package fl

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"bofl/internal/core"
	"bofl/internal/exact"
	"bofl/internal/faultinject"
	"bofl/internal/obs"
	"bofl/internal/obs/ledger"
	"bofl/internal/parallel"
	"bofl/internal/simclock"
)

// RoundRequest is the server → client message starting one training round
// (step 2 of Figure 1: model and training parameters are sent to selected
// devices).
type RoundRequest struct {
	Round    int       `json:"round"`
	Params   []float64 `json:"params"`
	Jobs     int       `json:"jobs"`
	Deadline float64   `json:"deadlineSeconds"`
	// Trace is the server-minted trace context for this dispatch: the round
	// trace ID plus the per-attempt span the client's work hangs under. It
	// rides both the X-Bofl-Trace header and the codec meta section, so every
	// negotiated codec path carries it.
	Trace obs.TraceContext `json:"trace"`
	// Alg names the round's aggregation protocol (empty means AlgFedAvg);
	// clients adjust their local objective accordingly.
	Alg string `json:"alg,omitempty"`
	// Prox is the FedProx proximal coefficient μ; 0 when unused.
	Prox float64 `json:"prox,omitempty"`
	// Aux is an algorithm-defined auxiliary vector — SCAFFOLD's server
	// control variate c. Shared read-only across the round's dispatches.
	Aux []float64 `json:"aux,omitempty"`
}

// RoundResponse is the client → server report (step 3 of Figure 1).
type RoundResponse struct {
	ClientID    string           `json:"clientId"`
	Params      []float64        `json:"params"`
	NumExamples int              `json:"numExamples"`
	Report      core.RoundReport `json:"report"`
	// Spans are the client's span summaries for this round (training round,
	// config window), timed on the client's local clock. The server grafts
	// them under the attempt span so /v1/telemetry serves one stitched trace
	// per round.
	Spans []obs.SpanSummary `json:"spans,omitempty"`
	// Steps is the number of local optimization steps the client actually ran
	// this round; FedNova's normalized averaging weighs by it. 0 means the
	// nominal job count (clients predating the field).
	Steps int `json:"steps,omitempty"`
	// Aux is the algorithm-defined auxiliary return — SCAFFOLD's
	// control-variate delta Δc_i.
	Aux []float64 `json:"aux,omitempty"`
}

// Participant abstracts a reachable FL client — in-process or across HTTP.
type Participant interface {
	// ID returns the client identifier.
	ID() string
	// TMinFor reports the client's minimum feasible round time for the
	// given job count (used for deadline assignment).
	TMinFor(jobs int) (float64, error)
	// Round executes one training round and returns updated parameters.
	Round(req RoundRequest) (RoundResponse, error)
}

// LocalParticipant adapts an in-process *Client to the Participant interface.
type LocalParticipant struct {
	Client *Client
}

var _ Participant = (*LocalParticipant)(nil)

// ID returns the wrapped client's id.
func (p *LocalParticipant) ID() string { return p.Client.ID() }

// TMinFor delegates to the client.
func (p *LocalParticipant) TMinFor(jobs int) (float64, error) { return p.Client.TMin(jobs) }

// Round installs the global parameters, trains, runs the configuration
// window, and returns the updated parameters. When the request carries a
// valid trace context the client's round and config-window phases are
// reported back as span summaries (timed on this process's monotonic clock)
// so the server can stitch them under the attempt span.
func (p *LocalParticipant) Round(req RoundRequest) (RoundResponse, error) {
	if err := p.Client.BeginRound(req); err != nil {
		return RoundResponse{}, err
	}
	var spans []obs.SpanSummary
	t0 := time.Now()
	rep, err := p.Client.TrainRoundCtx(req.Round, req.Jobs, req.Deadline, req.Trace)
	if err != nil {
		return RoundResponse{}, err
	}
	if req.Trace.Valid() {
		spans = append(spans, obs.SpanSummary{
			Name: obs.SpanClientRound, StartNs: 0, DurNs: time.Since(t0).Nanoseconds(),
		})
	}
	t1 := time.Now()
	if _, err := p.Client.ConfigWindowCtx(req.Trace); err != nil {
		return RoundResponse{}, err
	}
	if req.Trace.Valid() {
		spans = append(spans, obs.SpanSummary{
			Name: obs.SpanClientWindow, StartNs: t1.Sub(t0).Nanoseconds(), DurNs: time.Since(t1).Nanoseconds(),
		})
	}
	resp := RoundResponse{
		ClientID:    p.Client.ID(),
		Params:      p.Client.Params(),
		NumExamples: p.Client.NumExamples(),
		Report:      rep,
		Spans:       spans,
	}
	p.Client.FinishRound(&resp)
	return resp, nil
}

// Selector chooses the round's participants from the registered pool.
type Selector interface {
	Select(round int, pool []Participant, k int) []Participant
}

// RandomSelector samples k participants uniformly without replacement — the
// vanilla FL design (§2.1); deterministic per seed.
type RandomSelector struct {
	rng *rand.Rand
	mu  sync.Mutex
	// idx is persistent selection scratch: a permutation of [0, n), reused
	// across rounds and rebuilt only when the pool size changes. Selection is
	// a partial Fisher–Yates over it — O(k) draws and zero per-round
	// allocation beyond the result, instead of a fresh n-permutation.
	idx []int
}

var _ Selector = (*RandomSelector)(nil)

// NewRandomSelector builds a seeded selector.
func NewRandomSelector(seed int64) *RandomSelector {
	return &RandomSelector{rng: rand.New(rand.NewSource(seed))}
}

// Select samples min(k, len(pool)) distinct participants.
func (s *RandomSelector) Select(round int, pool []Participant, k int) []Participant {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(pool)
	if k > n {
		k = n
	}
	if len(s.idx) != n {
		s.idx = make([]int, n)
		for i := range s.idx {
			s.idx[i] = i
		}
	}
	out := make([]Participant, k)
	for i := 0; i < k; i++ {
		j := i + s.rng.Intn(n-i)
		s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
		out[i] = pool[s.idx[i]]
	}
	return out
}

// AllSelector selects every registered participant each round (the paper's
// single-device evaluation corresponds to this with one client).
type AllSelector struct{}

var _ Selector = AllSelector{}

// Select returns the whole pool.
func (AllSelector) Select(round int, pool []Participant, k int) []Participant { return pool }

// ServerConfig configures an FL server.
type ServerConfig struct {
	// InitialParams seed the global model.
	InitialParams []float64
	// Jobs is W, the per-round job count each participant must complete.
	Jobs int
	// DeadlineRatio is T_max/T_min for the per-round deadline draw.
	DeadlineRatio float64
	// Selector picks participants; defaults to AllSelector.
	Selector Selector
	// ParticipantsPerRound is passed to the selector (ignored by
	// AllSelector).
	ParticipantsPerRound int
	// Seed drives deadline sampling.
	Seed int64
	// TolerateDropouts implements Figure 1's "drop out or miss deadline"
	// path: failed or deadline-missing participants are excluded from the
	// round's aggregation instead of aborting it. A round still fails when
	// every selected participant drops.
	TolerateDropouts bool
	// Quorum is the fraction of selected participants whose updates must be
	// aggregated for a round to commit: required = ⌈Quorum·n⌉. 0 keeps the
	// legacy semantics (tolerant rounds need ≥ 1 survivor, strict rounds need
	// all). Any positive quorum implies dropout tolerance. Must be ≤ 1.
	Quorum float64
	// Retry bounds the per-participant retry loop; the zero value disables
	// retries (single attempt, unbounded).
	Retry RetryConfig
	// FaultPolicy injects deterministic faults into the participant call
	// path; nil means no injection.
	FaultPolicy faultinject.Policy
	// Clock drives injected delays and retry backoff; defaults to the real
	// clock. Tests pass a *simclock.Sim so chaos runs in virtual time.
	Clock simclock.Clock
	// Ledger, when set, journals every attempt verdict, quarantine, quorum
	// and commit/abort decision the round produces — appended in fold order
	// under the turnstile, so replays at a fixed seed are byte-identical.
	Ledger *ledger.Ledger
	// Tree, when set, shards aggregation into a hierarchy of intermediate
	// aggregators (see tree.go). nil keeps the flat streaming fold; because
	// both paths accumulate exactly, the committed model is bit-identical
	// either way.
	Tree *TreeConfig
	// Aggregator is the aggregation strategy (see aggregator.go); nil means
	// FedAvg, the legacy hardcoded fold.
	Aggregator Aggregator
}

// Server orchestrates federated rounds: selection, deadline assignment,
// dispatch, and pluggable aggregation. Dispatch is bounded by the shared
// internal/parallel worker pool and updates are folded into a single reused
// accumulator as they arrive, so a round's memory footprint is O(params) —
// independent of the number of selected participants.
type Server struct {
	cfg    ServerConfig
	global []float64
	pool   []Participant
	rng    *rand.Rand
	round  int
	sink   obs.Sink
	caller *roundCaller

	// quarantined holds clients excluded from selection after shipping a
	// corrupt frame; they stay out until ClearQuarantine.
	quarantined map[string]bool
	// eligible caches the quarantine-filtered pool; rebuilt only when the
	// pool or the quarantine set changes, so steady-state rounds at large n
	// pay no per-round rescan or reallocation.
	eligible      []Participant
	eligibleStale bool

	// agg is the aggregation strategy; never nil after NewServer.
	agg Aggregator
	// acc is the flat-fold exact accumulator; tree is the tier spine. Each is
	// built on first use and reused across rounds. Both span the extended
	// fold vector: the model dims plus the strategy's statistic slots.
	acc  *exact.Vec
	tree *treeFold
	// sum is commit scratch for the rounded exact totals; contrib is the
	// per-response contribution scratch, written and folded strictly under
	// the turnstile.
	sum     []float64
	contrib []float64
}

// SetSink installs a telemetry sink. Beyond orchestration metrics, the server
// folds every client-reported RoundReport into the BoFL domain instruments,
// so a server-side scrape shows round energy, deadline misses, phase and
// front size even though the controllers run on the clients.
func (s *Server) SetSink(sink obs.Sink) { s.sink = obs.OrNop(sink) }

// NewServer validates the configuration and builds a server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if len(cfg.InitialParams) == 0 {
		return nil, errors.New("fl: server needs initial parameters")
	}
	if cfg.Jobs <= 0 {
		return nil, fmt.Errorf("fl: server job count %d", cfg.Jobs)
	}
	if cfg.DeadlineRatio < 1 {
		return nil, fmt.Errorf("fl: deadline ratio %v must be ≥ 1", cfg.DeadlineRatio)
	}
	if cfg.Selector == nil {
		cfg.Selector = AllSelector{}
	}
	if cfg.Quorum < 0 || cfg.Quorum > 1 {
		return nil, fmt.Errorf("fl: quorum %v must be in [0, 1]", cfg.Quorum)
	}
	if err := cfg.Tree.validate(); err != nil {
		return nil, err
	}
	agg := cfg.Aggregator
	if agg == nil {
		agg = FedAvg{}
	}
	global := make([]float64, len(cfg.InitialParams))
	copy(global, cfg.InitialParams)
	return &Server{
		cfg:         cfg,
		agg:         agg,
		global:      global,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		sink:        obs.Nop,
		caller:      newRoundCaller(cfg.Retry, cfg.FaultPolicy, cfg.Clock),
		quarantined: make(map[string]bool),
	}, nil
}

// tolerant reports whether the server strips failed participants instead of
// aborting the round. A positive round or tier quorum implies tolerance.
func (s *Server) tolerant() bool {
	return s.cfg.TolerateDropouts || s.cfg.Quorum > 0 ||
		(s.cfg.Tree != nil && s.cfg.Tree.TierQuorum > 0)
}

// Quarantine excludes a client from all future selection (until cleared).
func (s *Server) Quarantine(id string) {
	if !s.quarantined[id] {
		s.quarantined[id] = true
		s.eligibleStale = true
		s.sink.Count(obs.MetricFLQuarantines, 1)
	}
}

// QuarantinedIDs returns the currently quarantined client ids (unordered).
func (s *Server) QuarantinedIDs() []string {
	out := make([]string, 0, len(s.quarantined))
	for id := range s.quarantined {
		out = append(out, id)
	}
	return out
}

// ClearQuarantine re-admits a client to the selection pool.
func (s *Server) ClearQuarantine(id string) {
	if s.quarantined[id] {
		delete(s.quarantined, id)
		s.eligibleStale = true
	}
}

// Register adds a participant to the pool.
func (s *Server) Register(p Participant) {
	s.pool = append(s.pool, p)
	s.eligibleStale = true
}

// Aggregator returns the server's aggregation strategy (FedAvg when the
// config left it nil).
func (s *Server) Aggregator() Aggregator { return s.agg }

// GlobalParams returns a copy of the current global model parameters.
func (s *Server) GlobalParams() []float64 {
	out := make([]float64, len(s.global))
	copy(out, s.global)
	return out
}

// RoundResult summarizes one orchestrated round.
type RoundResult struct {
	Round    int     `json:"round"`
	Deadline float64 `json:"deadlineSeconds"`
	// TraceID identifies the round's stitched distributed trace — minted
	// deterministically from (server seed, round), so it doubles as the
	// replay-stable join key between /v1/telemetry and /v1/ledger.
	TraceID string `json:"traceId,omitempty"`
	// Responses holds each aggregated participant's round metadata. The
	// parameter vectors are folded into the global model as they arrive and
	// then released, so Params is nil on every entry — retaining them would
	// put round memory back at O(clients × params).
	Responses []RoundResponse    `json:"responses"`
	Reports   []core.RoundReport `json:"-"`
	// Dropped lists the ids of selected participants that failed or missed
	// the deadline this round (populated in dropout-tolerant rounds). It is
	// a superset of Stragglers and Quarantined.
	Dropped []string `json:"dropped,omitempty"`
	// Stragglers lists participants stripped for exceeding the attempt
	// timeout.
	Stragglers []string `json:"stragglers,omitempty"`
	// Quarantined lists participants excluded this round for shipping a
	// corrupt frame; they stay out of future selection.
	Quarantined []string `json:"quarantined,omitempty"`
}

// RunRound executes one full FL round: select participants, assign a
// deadline (uniform in [T_min, ratio·T_min] of the slowest selected client,
// §6.1), dispatch training in parallel, and aggregate the updates with the
// configured strategy (FedAvg by default, weighted by local dataset size).
func (s *Server) RunRound() (RoundResult, error) {
	if len(s.pool) == 0 {
		return RoundResult{}, errors.New("fl: no registered participants")
	}
	s.round++
	// The round trace context is minted from (seed, round) — not from a
	// random source — so replaying a seeded scenario reproduces the same
	// trace IDs and the ledger journal stays byte-identical.
	tc := obs.MintTrace(s.cfg.Seed, s.round)
	endRound := s.sink.Span(obs.SpanFLRound, tc.SpanLabels()...)
	defer endRound()

	// Quarantined clients are filtered out before selection, so every
	// Selector implementation stays quarantine-safe for free. The filtered
	// view is cached and rebuilt only when the pool or quarantine set
	// changed — one pass, amortized to nothing across steady-state rounds.
	eligible := s.pool
	if len(s.quarantined) > 0 {
		if s.eligibleStale {
			s.eligible = s.eligible[:0]
			for _, p := range s.pool {
				if !s.quarantined[p.ID()] {
					s.eligible = append(s.eligible, p)
				}
			}
			s.eligibleStale = false
		}
		if len(s.eligible) == 0 {
			return RoundResult{}, fmt.Errorf("fl: round %d: every registered participant is quarantined", s.round)
		}
		eligible = s.eligible
	}

	endSelect := s.sink.Span(obs.SpanFLSelect, tc.ChildLabels()...)
	selected := s.cfg.Selector.Select(s.round, eligible, s.cfg.ParticipantsPerRound)
	endSelect()
	if len(selected) == 0 {
		return RoundResult{}, fmt.Errorf("fl: selector chose no participants in round %d", s.round)
	}

	// Deadline: the slowest selected client's T_min scaled by a uniform
	// draw from [1, ratio].
	endConfigure := s.sink.Span(obs.SpanFLConfigure, tc.ChildLabels()...)
	tmin := 0.0
	for _, p := range selected {
		t, err := p.TMinFor(s.cfg.Jobs)
		if err != nil {
			endConfigure()
			return RoundResult{}, fmt.Errorf("fl: tmin of %s: %w", p.ID(), err)
		}
		if t > tmin {
			tmin = t
		}
	}
	lo := deadlineFloor
	if s.cfg.DeadlineRatio < lo {
		lo = s.cfg.DeadlineRatio
	}
	deadline := tmin * (lo + s.rng.Float64()*(s.cfg.DeadlineRatio-lo))

	endConfigure()
	s.ledgerAppend(ledger.Event{
		Kind: ledger.KindRoundBegin, TraceID: tc.TraceID, SpanID: tc.SpanID,
		Deadline: deadline, Selected: len(selected),
	})

	// Execute phase: dispatch through the shared bounded worker pool and
	// stream each arriving update into the FedAvg accumulator. Folds happen
	// strictly in participant index order (a condition-variable turnstile)
	// and accumulate exactly (internal/exact), so the committed model is
	// byte-identical for any pool width, completion order or tree shape. A
	// worker whose turn has not come waits holding only its own response, so
	// at most pool-width parameter vectors are alive at once; the
	// O(clients×params) response buffer of the old two-phase design is gone.
	endExecute := s.sink.Span(obs.SpanFLExecute, tc.ChildLabels()...)
	n := len(selected)
	s.caller.resetBudget()
	// The fold spans the extended vector: model dims plus the strategy's
	// statistic slots, all accumulated exactly so tier partials and quorum
	// renormalization treat them uniformly.
	vecDim := len(s.global) + s.agg.ExtraDim(len(s.global))
	if len(s.contrib) != vecDim {
		s.contrib = make([]float64, vecDim)
	}
	var tree *treeFold
	if s.cfg.Tree != nil {
		if s.tree == nil || s.tree.dim != vecDim || s.tree.cfg != *s.cfg.Tree {
			s.tree = newTreeFold(s, *s.cfg.Tree, vecDim)
		}
		tree = s.tree
		tree.reset(n, tc)
	} else {
		if s.acc == nil || s.acc.Dim() != vecDim {
			s.acc = exact.NewVec(vecDim)
		} else {
			s.acc.Reset()
		}
	}
	// One Configure per round, before dispatch fans out: the strategy's
	// request decoration (algorithm tag, μ, control variate) is
	// round-constant, and calling it here keeps stateful strategies off the
	// concurrent chunk goroutines. Params is only lent to Configure for its
	// dimensionality — each dispatch gets its own private copy below.
	proto := RoundRequest{
		Round:    s.round,
		Params:   s.global,
		Jobs:     s.cfg.Jobs,
		Deadline: deadline,
		Trace:    tc,
	}
	s.agg.Configure(&proto)
	proto.Params = nil
	type slot struct {
		resp        RoundResponse   // Params stripped after folding
		err         error           // participant Round failure
		valErr      error           // aggregation-fatal validation failure
		treeDropped bool            // folded, then discarded with its subtree
		recs        []attemptRecord // per-attempt verdicts for ledger + trace graft
	}
	slots := make([]slot, n)
	var (
		foldMu      sync.Mutex
		foldCond    = sync.NewCond(&foldMu)
		nextFold    int
		totalWeight int64
	)
	parallel.ForChunk(n, func(lo, hi int) {
		// One params scratch per chunk: each participant gets a private
		// copy of the global vector, so no two concurrent requests alias
		// the same backing slice (and none alias s.global). The scratch is
		// only reused after the previous index's fold completed, which is
		// the point where the server stops reading the response.
		var scratch []float64
		for i := lo; i < hi; i++ {
			if scratch == nil {
				scratch = make([]float64, len(s.global))
			}
			copy(scratch, s.global)
			req := proto
			req.Params = scratch
			resp, recs, err := s.caller.call(selected[i], req, s.sink)

			foldMu.Lock()
			for nextFold != i {
				foldCond.Wait()
			}
			// Ledger appends happen inside the turnstile, so attempt events
			// land in participant index order regardless of which goroutine
			// finished first — the property the byte-identical replay
			// guarantee rests on.
			slots[i].recs = recs
			clientID := selected[i].ID()
			for _, rec := range recs {
				ev := ledger.Event{
					Kind: ledger.KindAttempt, TraceID: tc.TraceID, SpanID: rec.spanID,
					Client: clientID, Attempt: rec.attempt, Verdict: rec.verdict,
					DelayNs: rec.delayNs, BackoffNs: rec.backoffNs,
					WireTxBytes: rec.wireTx, WireRxBytes: rec.wireRx,
					Detail: rec.detail,
				}
				if rec.verdict == ledger.VerdictOK && err == nil {
					ev.EnergyJoules = resp.Report.Energy
					ev.LatencySeconds = resp.Report.Duration
				}
				s.ledgerAppend(ev)
			}
			if err != nil {
				slots[i].err = err
			} else {
				// In dropout-tolerant rounds a deadline miss excludes the
				// update from aggregation; in strict rounds it is still
				// aggregated (and only reported), matching the legacy
				// batch behaviour.
				if !s.tolerant() || resp.Report.DeadlineMet {
					endFold := s.sink.Span(obs.SpanFLFold, tc.ChildLabels()...)
					switch {
					case len(resp.Params) != len(s.global):
						slots[i].valErr = fmt.Errorf("fl: client %s returned %d params, want %d",
							resp.ClientID, len(resp.Params), len(s.global))
					case resp.NumExamples <= 0:
						slots[i].valErr = fmt.Errorf("fl: client %s reports %d examples",
							resp.ClientID, resp.NumExamples)
					default:
						w := int64(resp.NumExamples)
						if cerr := s.agg.Contribute(s.contrib, s.global, &resp, s.cfg.Jobs); cerr != nil {
							slots[i].valErr = cerr
						} else if tree != nil {
							tree.fold(w, s.contrib)
						} else {
							s.acc.Add(s.contrib)
							totalWeight += w
						}
					}
					endFold()
				}
				resp.Params, resp.Aux = nil, nil // the update now lives in the accumulator
				slots[i].resp = resp
			}
			if tree != nil {
				// Close every tier group whose span ends here — still inside
				// the turnstile, so partial frames and their ledger entries
				// land in canonical order.
				tree.advance(i)
			}
			nextFold++
			foldCond.Broadcast()
			foldMu.Unlock()
		}
	})
	endExecute()

	accVec := s.acc
	if tree != nil {
		if tree.err != nil {
			return RoundResult{}, s.abortRound(tc, tree.err)
		}
		accVec, totalWeight = tree.root()
		for i := range slots {
			// A discarded subtree's weight never reached the root, so its
			// leaves are out of the commit even though they folded.
			slots[i].treeDropped = tree.treeDropped(i)
		}
	}

	for i := range slots {
		if slots[i].err != nil {
			s.sink.Count(obs.MetricFLRoundErrors, 1)
		}
	}

	result := RoundResult{
		Round:     s.round,
		Deadline:  deadline,
		TraceID:   tc.TraceID,
		Responses: make([]RoundResponse, 0, n),
	}
	if s.tolerant() {
		// Figure 1's dropout path: keep the survivors, record the rest.
		// Dropped stays the catch-all list; stragglers and quarantines are
		// additionally tagged (and, for quarantines, excluded from future
		// selection).
		for i := range slots {
			switch {
			case slots[i].err != nil:
				id := selected[i].ID()
				result.Dropped = append(result.Dropped, id)
				switch {
				case errors.Is(slots[i].err, ErrCorruptFrame):
					result.Quarantined = append(result.Quarantined, id)
					s.Quarantine(id)
					s.sink.Event(obs.EventFLQuarantine,
						tc.SpanLabels(obs.L("client", id))...)
					s.ledgerAppend(ledger.Event{
						Kind: ledger.KindQuarantine, TraceID: tc.TraceID, Client: id,
					})
				case errors.Is(slots[i].err, errStraggler):
					result.Stragglers = append(result.Stragglers, id)
					s.sink.Count(obs.MetricFLStragglerStrips, 1)
				}
			case !slots[i].resp.Report.DeadlineMet, slots[i].treeDropped:
				result.Dropped = append(result.Dropped, slots[i].resp.ClientID)
			default:
				result.Responses = append(result.Responses, slots[i].resp)
			}
		}
		// Quorum: required = ⌈Quorum·n⌉ of the *selected* participants must
		// have been folded. With Quorum unset the legacy floor (≥ 1
		// survivor) applies.
		required := 1
		if s.cfg.Quorum > 0 {
			required = int(math.Ceil(s.cfg.Quorum * float64(n)))
			if required < 1 {
				required = 1
			}
		}
		if len(result.Responses) == 0 {
			return RoundResult{}, s.abortRound(tc, fmt.Errorf("fl: round %d: every participant dropped", s.round))
		}
		if len(result.Responses) < required {
			return RoundResult{}, s.abortRound(tc, fmt.Errorf("fl: round %d: quorum not met: %d of %d selected reported, need %d",
				s.round, len(result.Responses), n, required))
		}
		if s.cfg.Quorum > 0 && len(result.Responses) < n {
			// The round commits below full participation: the streaming
			// fold's deferred normalization renormalizes the weights over
			// the survivors automatically (see DESIGN.md §8).
			s.sink.Count(obs.MetricFLQuorumRounds, 1)
			s.ledgerAppend(ledger.Event{
				Kind: ledger.KindQuorum, TraceID: tc.TraceID,
				Survivors: len(result.Responses), Selected: n,
			})
		}
	} else {
		for i := range slots {
			if slots[i].err != nil {
				if errors.Is(slots[i].err, ErrCorruptFrame) {
					id := selected[i].ID()
					s.Quarantine(id)
					s.sink.Event(obs.EventFLQuarantine,
						tc.SpanLabels(obs.L("client", id))...)
					s.ledgerAppend(ledger.Event{
						Kind: ledger.KindQuarantine, TraceID: tc.TraceID, Client: id,
					})
				}
				return RoundResult{}, s.abortRound(tc, fmt.Errorf("fl: participant %s: %w", selected[i].ID(), slots[i].err))
			}
		}
		for i := range slots {
			result.Responses = append(result.Responses, slots[i].resp)
		}
	}
	// Validation failures (bad length, non-positive example count) are
	// round-fatal, exactly as the batch aggregate treated them.
	for i := range slots {
		if slots[i].valErr != nil {
			return RoundResult{}, s.abortRound(tc, slots[i].valErr)
		}
	}

	// Report phase: commit the deferred normalization — round the exact sums
	// to float64 once, then hand the totals (model slots plus statistic
	// slots) to the strategy's Commit. Flat fold and tree root hold the same
	// exact sums, so this commit is bit-identical on both paths. Nothing
	// before this line mutated the global model, so a failed round leaves it
	// untouched.
	endReport := s.sink.Span(obs.SpanFLReport, tc.ChildLabels()...)
	if totalWeight <= 0 {
		endReport()
		return RoundResult{}, s.abortRound(tc, fmt.Errorf("fl: round %d: zero aggregate weight", s.round))
	}
	if len(s.sum) != vecDim {
		s.sum = make([]float64, vecDim)
	}
	accVec.RoundTo(s.sum)
	if err := s.agg.Commit(s.global, s.sum, s.cfg.Jobs); err != nil {
		endReport()
		return RoundResult{}, s.abortRound(tc, fmt.Errorf("fl: round %d: %w", s.round, err))
	}
	endReport()

	// Stitch client-returned span summaries under their attempt spans. The
	// timestamps are client-local (no cross-process clock alignment is
	// attempted); the trace ID is the join key, so grafted spans still land
	// in the right round trace.
	if g, ok := s.sink.(obs.SpanGrafter); ok {
		for i := range slots {
			spans := slots[i].resp.Spans
			if len(spans) == 0 {
				continue
			}
			parent := tc.SpanID
			if nr := len(slots[i].recs); nr > 0 {
				parent = slots[i].recs[nr-1].spanID
			}
			for _, ss := range spans {
				g.Graft(obs.SpanEvent{
					Name:  ss.Name,
					Start: ss.StartNs,
					Dur:   ss.DurNs,
					Labels: obs.Labels{
						obs.L(obs.LabelTraceID, tc.TraceID),
						obs.L(obs.LabelParentID, parent),
						obs.L("client", slots[i].resp.ClientID),
						obs.L("clock", "client-local"),
					},
				})
			}
		}
	}

	result.Reports = make([]core.RoundReport, 0, len(result.Responses))
	for _, r := range result.Responses {
		result.Reports = append(result.Reports, r.Report)
	}
	s.sink.Count(obs.MetricFLRounds, 1)
	s.sink.Count(obs.MetricFLDropouts, float64(len(result.Dropped)))
	s.recordReports(result.Reports, tc)
	s.ledgerAppend(ledger.Event{
		Kind: ledger.KindCommit, TraceID: tc.TraceID,
		Survivors: len(result.Responses), Selected: n,
	})
	return result, nil
}

// abortRound journals a failed round's terminal event and passes the error
// through, so every post-selection exit leaves a ledger trail.
func (s *Server) abortRound(tc obs.TraceContext, err error) error {
	s.ledgerAppend(ledger.Event{Kind: ledger.KindAbort, TraceID: tc.TraceID, Detail: err.Error()})
	return err
}

// ledgerAppend stamps the current round onto ev and journals it. Safe with a
// nil ledger, so call sites need no enabled/disabled branching.
func (s *Server) ledgerAppend(ev ledger.Event) {
	if s.cfg.Ledger == nil {
		return
	}
	ev.Round = s.round
	s.cfg.Ledger.Append(ev)
}

// recordReports folds the round's client reports into the BoFL domain
// instruments, mirroring what each client's controller records locally. When
// the sink supports exemplars, the round energy/duration observations carry
// the round's trace ID so an outlier histogram sample can be jumped straight
// to its stitched trace.
func (s *Server) recordReports(reports []core.RoundReport, tc obs.TraceContext) {
	if len(reports) == 0 {
		return
	}
	// Counters are additive and gauges are last-wins, so everything except the
	// histogram observations aggregates locally first: at fleet scale a
	// per-report labeled Count would re-render the series key a thousand times
	// a round, and that lookup churn — not the arithmetic — was the dominant
	// cost of the live sink.
	eo, hasExemplars := s.sink.(obs.ExemplarObserver)
	misses := 0
	var phaseEnergy, phaseLatency map[core.Phase]float64
	for _, rep := range reports {
		if hasExemplars {
			eo.ObserveExemplar(obs.MetricRoundEnergy, rep.Energy, tc)
			eo.ObserveExemplar(obs.MetricRoundDuration, rep.Duration, tc)
		} else {
			s.sink.Observe(obs.MetricRoundEnergy, rep.Energy)
			s.sink.Observe(obs.MetricRoundDuration, rep.Duration)
		}
		if !rep.DeadlineMet {
			misses++
		}
		if phaseEnergy == nil {
			phaseEnergy = make(map[core.Phase]float64, 2)
			phaseLatency = make(map[core.Phase]float64, 2)
		}
		phaseEnergy[rep.Phase] += rep.Energy
		phaseLatency[rep.Phase] += rep.Duration
	}
	s.sink.Count(obs.MetricRounds, float64(len(reports)))
	if misses > 0 {
		s.sink.Count(obs.MetricDeadlineMisses, float64(misses))
	}
	last := reports[len(reports)-1]
	s.sink.SetGauge(obs.MetricControllerPhase, float64(last.Phase))
	s.sink.SetGauge(obs.MetricFrontSize, float64(last.FrontSize))
	for ph, e := range phaseEnergy {
		phase := obs.L("phase", ph.String())
		s.sink.Count(obs.MetricPhaseEnergy, e, phase)
		s.sink.Count(obs.MetricPhaseLatency, phaseLatency[ph], phase)
	}
}

// aggregate applies FedAvg in batch: the global model becomes the
// dataset-size weighted average of the participants' parameters. It performs
// the same operations as RunRound's streaming fold — accumulate w·v exactly,
// round once, divide by the integer total weight — so flat rounds, tree
// rounds and this batch reference are all byte-identical on the same
// response set; it is kept as the reference implementation for the
// equivalence tests.
func (s *Server) aggregate(responses []RoundResponse) error {
	var totalWeight int64
	acc := exact.NewVec(len(s.global))
	for _, r := range responses {
		switch {
		case len(r.Params) != len(s.global):
			return fmt.Errorf("fl: client %s returned %d params, want %d", r.ClientID, len(r.Params), len(s.global))
		case r.NumExamples <= 0:
			return fmt.Errorf("fl: client %s reports %d examples", r.ClientID, r.NumExamples)
		}
		acc.AddScaled(float64(r.NumExamples), r.Params)
		totalWeight += int64(r.NumExamples)
	}
	if totalWeight <= 0 {
		return errors.New("fl: zero aggregate weight")
	}
	sum := make([]float64, len(s.global))
	acc.RoundTo(sum)
	tw := float64(totalWeight)
	for i := range s.global {
		s.global[i] = sum[i] / tw
	}
	return nil
}

// Run executes `rounds` rounds and returns all results.
func (s *Server) Run(rounds int) ([]RoundResult, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("fl: round count %d", rounds)
	}
	out := make([]RoundResult, 0, rounds)
	for r := 0; r < rounds; r++ {
		res, err := s.RunRound()
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}
