package fl

// Hierarchical aggregation. With a tree configured, RunRound's turnstile no
// longer folds leaves into a single root accumulator: contiguous spans of
// Fanout leaves fold into a tier-0 aggregator, every Fanout tier-0 partials
// merge into a tier-1 aggregator, and so on until one node spans the whole
// selection — the root. Because the turnstile already fixes the canonical
// leaf order and the fold arithmetic is exact (internal/exact), only the
// *rightmost* group of every tier can be open at any moment. That spine is
// the whole working set: O(depth · params) accumulator memory regardless of
// how many leaves the round selects, and the root sum is bit-identical to
// the flat fold for any fanout.
//
// Every group close serializes the child's accumulator window into a BFL1
// partial-aggregate frame and absorbs it into the parent through the decoder
// — the in-process tree exercises the identical wire path a distributed tier
// deployment would, and the frame bytes are journaled per tier.
//
// Per-tier quorum composes with the round-level machinery: a group whose
// surviving children fall below ⌈TierQuorum · children⌉ is discarded whole
// (KindSubtreeDrop), its leaves join the round's Dropped list, and — because
// normalization is deferred to the root commit — the parent renormalizes
// over the surviving siblings by doing nothing at all.

import (
	"bytes"
	"fmt"
	"math"
	"sync"

	"bofl/internal/exact"
	"bofl/internal/obs"
	"bofl/internal/obs/ledger"
	"bofl/internal/parallel"
)

// maxPendingCloses bounds the tier-0 close pipeline: how many group closes
// may have their frame encode/decode in flight off the turnstile before the
// oldest must commit. Small and fixed — the pipeline exists to overlap codec
// work (including gzip for large windows) with the next leaves' folds, not to
// buffer the round.
const maxPendingCloses = 4

// TreeConfig shapes the aggregation tree.
type TreeConfig struct {
	// Fanout is the maximum children per aggregator node; must be ≥ 2. The
	// rightmost node of every tier may be ragged (fewer children).
	Fanout int
	// TierQuorum is the fraction of an aggregator's children that must
	// deliver for the node to forward a partial: required = ⌈q·children⌉.
	// 0 disables per-tier quorum. Any positive value implies dropout
	// tolerance, like ServerConfig.Quorum.
	TierQuorum float64
}

func (c *TreeConfig) validate() error {
	if c == nil {
		return nil
	}
	if c.Fanout < 2 {
		return fmt.Errorf("fl: tree fanout %d must be ≥ 2", c.Fanout)
	}
	if c.TierQuorum < 0 || c.TierQuorum > 1 {
		return fmt.Errorf("fl: tier quorum %v must be in [0, 1]", c.TierQuorum)
	}
	return nil
}

// treeTier is one tier's live (rightmost) aggregator group.
type treeTier struct {
	vec       *exact.Vec
	weight    int64 // integer example-count weight folded so far
	arrived   int   // children that delivered into the open group
	attempted int   // children closed under the open group, delivered or not
	leafLo    int   // first leaf index of the open group's span
	node      int   // tier-local ordinal of the open group
}

// closeJob is one tier-0 group close in flight: the frame bytes produced
// under the turnstile (the encode must stay synchronous — its ledger event's
// byte position and wire size are part of the canonical journal), plus the
// decode its worker runs off-thread. Jobs are ring slots reused across closes
// and rounds, so steady-state pipelining allocates nothing.
type closeJob struct {
	node int
	buf  bytes.Buffer
	dec  PartialAggregate
	err  error
	wg   sync.WaitGroup
}

// run is the off-turnstile half of a tier-0 close: decoding the partial frame
// (meta parse, gunzip, limb unpack) — the identical wire path the sync close
// exercises. Absorbing into the parent stays on the turnstile (commitClose),
// in enqueue order, so the fold remains canonical.
func (j *closeJob) run() {
	defer j.wg.Done()
	if err := DecodePartialAggregateInto(&j.buf, &j.dec); err != nil {
		j.err = fmt.Errorf("fl: tier 0 node %d: decode partial: %w", j.node, err)
	}
}

// treeFold is the per-round spine. It is reused across rounds (the tier
// accumulators are the dominant allocation) and rewound by reset.
type treeFold struct {
	srv   *Server
	cfg   TreeConfig
	dim   int
	tiers []*treeTier

	// Tier-0 close pipeline: a FIFO ring of in-flight closeJobs. Commits
	// happen in enqueue order, and every tier ≥ 1 close (and every subtree
	// drop) drains the ring first, so partial frames, ledger events and
	// parent folds land in exactly the serial order.
	jobs    [maxPendingCloses]*closeJob
	jobHead int
	jobLen  int

	// Per-round state.
	n         int
	tc        obs.TraceContext
	dropped   [][2]int // leaf spans discarded by per-tier quorum, inclusive
	partials  int
	wireBytes int64
	err       error // first wire/merge failure; aborts the round
}

func newTreeFold(srv *Server, cfg TreeConfig, dim int) *treeFold {
	return &treeFold{srv: srv, cfg: cfg, dim: dim}
}

// reset rewinds the spine for a new round over n selected leaves.
func (f *treeFold) reset(n int, tc obs.TraceContext) {
	f.drainCloses() // defensive: a completed round always leaves the ring empty
	f.n, f.tc = n, tc
	f.dropped = f.dropped[:0]
	f.partials, f.wireBytes, f.err = 0, 0, nil
	for _, t := range f.tiers {
		t.vec.Reset()
		t.weight, t.arrived, t.attempted, t.leafLo, t.node = 0, 0, 0, 0, 0
	}
	f.ensureTier(0)
}

// ensureTier returns tier t, growing the spine as needed.
func (f *treeFold) ensureTier(t int) *treeTier {
	for len(f.tiers) <= t {
		f.tiers = append(f.tiers, &treeTier{vec: exact.NewVec(f.dim)})
	}
	return f.tiers[t]
}

// fold streams one surviving leaf contribution into the open tier-0 group.
// contrib is the aggregator-produced vector (weighted parameters plus the
// strategy's statistic slots, already scaled); w is the integer example
// weight, tracked for quorum accounting and the ledger. Must be called under
// the turnstile, in leaf index order.
func (f *treeFold) fold(w int64, contrib []float64) {
	t0 := f.tiers[0]
	t0.vec.Add(contrib)
	t0.weight += w
	t0.arrived++
}

// advance closes every group whose span ends at leaf i. Must be called under
// the turnstile after leaf i's slot is settled, for every leaf — survivors
// and dropouts alike.
func (f *treeFold) advance(i int) {
	f.tiers[0].attempted++
	span := f.cfg.Fanout
	t := 0
	for (i+1)%span == 0 || i+1 == f.n {
		top := span >= f.n // this group spans the whole selection: its close fills the root
		f.closeGroup(t, i)
		if top {
			return
		}
		t++
		if span > f.n/f.cfg.Fanout {
			span = f.n // saturates: only the i+1 == n close remains above here
		} else {
			span *= f.cfg.Fanout
		}
	}
}

// closeGroup finalizes tier t's open group ending at leaf i: quorum-check it,
// then either ship a partial frame into the parent or discard the subtree.
// Tier-0 ships go through the async pipeline when the parallel pool has
// workers to spare; every other path drains the pipeline first, so observable
// order is always the serial one.
func (f *treeFold) closeGroup(t, i int) {
	if t > 0 {
		// A tier ≥ 1 close folds over its children's partials — every pending
		// tier-0 close below it must have committed.
		f.drainCloses()
	}
	tier := f.tiers[t]
	parent := f.ensureTier(t + 1)
	node := tier.node
	endSpan := f.srv.sink.Span(obs.SpanFLTierFold, f.tc.ChildLabels()...)
	defer endSpan()

	required := 0
	if f.cfg.TierQuorum > 0 {
		required = int(math.Ceil(f.cfg.TierQuorum * float64(tier.attempted)))
	}
	switch {
	case tier.arrived < required:
		// Subtree drop: the partial never leaves this node. Deferred
		// normalization means the parent renormalizes over its surviving
		// children implicitly — the dropped weight simply never reaches the
		// root divisor. (Pending closes journaled at enqueue, so no drain is
		// needed for event order.)
		f.dropped = append(f.dropped, [2]int{tier.leafLo, i})
		f.srv.sink.Count(obs.MetricFLSubtreeDrops, 1)
		f.srv.ledgerAppend(ledger.Event{
			Kind: ledger.KindSubtreeDrop, TraceID: f.tc.TraceID,
			Tier: t, Node: node, Survivors: tier.arrived, Selected: tier.attempted,
			Detail: fmt.Sprintf("quorum %d/%d", tier.arrived, required),
		})
	case tier.arrived == 0:
		// Vacuous group (every leaf below already dropped individually, no
		// tier quorum configured): nothing to forward, nothing to journal.
	case t == 0 && f.n > f.cfg.Fanout && parallel.Workers() > 1:
		// Non-root tier-0 close with workers available: snapshot under the
		// turnstile, frame off-thread, commit in enqueue order.
		f.enqueueClose(tier, i)
	default:
		pa := PartialAggregate{
			Round: f.srv.round, Tier: t, Node: node,
			LeafLo: tier.leafLo, LeafHi: i,
			Survivors: tier.arrived, Weight: tier.weight,
			Sum:   tier.vec.Serialize(),
			Trace: f.tc,
		}
		buf := getBuf()
		if err := EncodePartialAggregate(buf, pa); err != nil {
			f.fail(fmt.Errorf("fl: tier %d node %d: encode partial: %w", t, node, err))
			putBuf(buf)
			break
		}
		wire := int64(buf.Len())
		dec, err := DecodePartialAggregate(buf)
		putBuf(buf)
		if err != nil {
			f.fail(fmt.Errorf("fl: tier %d node %d: decode partial: %w", t, node, err))
			break
		}
		if err := parent.vec.Absorb(dec.Sum); err != nil {
			f.fail(fmt.Errorf("fl: tier %d node %d: absorb partial: %w", t, node, err))
			break
		}
		parent.weight += dec.Weight
		parent.arrived++
		f.partials++
		f.wireBytes += wire
		f.srv.sink.Count(obs.MetricFLPartials, 1)
		f.srv.sink.Count(obs.MetricFLWireTx, float64(wire), obs.L("codec", "partial"))
		f.srv.ledgerAppend(ledger.Event{
			Kind: ledger.KindPartial, TraceID: f.tc.TraceID,
			Tier: t, Node: node, Survivors: tier.arrived, Selected: tier.attempted,
			Weight: tier.weight, WireTxBytes: wire,
		})
	}
	parent.attempted++
	tier.vec.Reset()
	tier.weight, tier.arrived, tier.attempted = 0, 0, 0
	tier.leafLo = i + 1
	tier.node++
}

// enqueueClose runs the turnstile half of an async tier-0 close — serialize,
// encode, journal, count, all byte-identical to the sync path — then hands
// the decode to a goroutine. When the ring is full the oldest job commits
// first, bounding in-flight memory at maxPendingCloses frames.
func (f *treeFold) enqueueClose(tier *treeTier, i int) {
	if f.jobLen == maxPendingCloses {
		f.commitClose()
	}
	slot := (f.jobHead + f.jobLen) % maxPendingCloses
	j := f.jobs[slot]
	if j == nil {
		j = &closeJob{}
		f.jobs[slot] = j
	}
	node := tier.node
	pa := PartialAggregate{
		Round: f.srv.round, Tier: 0, Node: node,
		LeafLo: tier.leafLo, LeafHi: i,
		Survivors: tier.arrived, Weight: tier.weight,
		Sum:   tier.vec.Serialize(),
		Trace: f.tc,
	}
	j.buf.Reset()
	if err := EncodePartialAggregate(&j.buf, pa); err != nil {
		f.fail(fmt.Errorf("fl: tier 0 node %d: encode partial: %w", node, err))
		return
	}
	wire := int64(j.buf.Len())
	f.partials++
	f.wireBytes += wire
	f.srv.sink.Count(obs.MetricFLPartials, 1)
	f.srv.sink.Count(obs.MetricFLWireTx, float64(wire), obs.L("codec", "partial"))
	f.srv.ledgerAppend(ledger.Event{
		Kind: ledger.KindPartial, TraceID: f.tc.TraceID,
		Tier: 0, Node: node, Survivors: tier.arrived, Selected: tier.attempted,
		Weight: tier.weight, WireTxBytes: wire,
	})
	j.node = node
	j.err = nil
	j.wg.Add(1)
	f.jobLen++
	go j.run()
}

// commitClose retires the oldest in-flight close: waits for its decode and
// absorbs the partial into tier 1 — the same fold, in enqueue order.
func (f *treeFold) commitClose() {
	j := f.jobs[f.jobHead]
	f.jobHead = (f.jobHead + 1) % maxPendingCloses
	f.jobLen--
	j.wg.Wait()
	if j.err != nil {
		f.fail(j.err)
		return
	}
	parent := f.ensureTier(1)
	if err := parent.vec.Absorb(j.dec.Sum); err != nil {
		f.fail(fmt.Errorf("fl: tier 0 node %d: absorb partial: %w", j.node, err))
		return
	}
	parent.weight += j.dec.Weight
	parent.arrived++
}

// drainCloses commits every in-flight tier-0 close, oldest first.
func (f *treeFold) drainCloses() {
	for f.jobLen > 0 {
		f.commitClose()
	}
}

func (f *treeFold) fail(err error) {
	if f.err == nil {
		f.err = err
	}
}

// root returns the root accumulator and total surviving weight. Valid only
// after advance(n-1).
func (f *treeFold) root() (*exact.Vec, int64) {
	top := f.tiers[len(f.tiers)-1]
	return top.vec, top.weight
}

// treeDropped reports whether leaf i fell inside a discarded subtree.
func (f *treeFold) treeDropped(i int) bool {
	for _, s := range f.dropped {
		if i >= s[0] && i <= s[1] {
			return true
		}
	}
	return false
}

// MemoryBytes reports the spine's accumulator footprint — O(depth · params),
// the bound the fleet simulator's per-node accounting checks.
func (f *treeFold) MemoryBytes() int64 {
	var total int64
	for _, t := range f.tiers {
		total += t.vec.MemoryBytes()
	}
	return total
}
