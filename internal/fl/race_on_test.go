//go:build race

package fl

// raceEnabled reports that this binary runs under the race detector, whose
// sync.Pool deliberately drops a fraction of Puts — so allocation-count pins
// over pooled paths are meaningless there.
const raceEnabled = true
