package fl

import (
	"math"
	"testing"

	"bofl/internal/core"
)

func TestNewBandwidthEstimatorValidation(t *testing.T) {
	cases := []struct {
		bw, alpha, headroom float64
	}{
		{0, 0.3, 1.2},
		{-1, 0.3, 1.2},
		{1000, 0, 1.2},
		{1000, 1.5, 1.2},
		{1000, 0.3, 0.9},
	}
	for i, c := range cases {
		if _, err := NewBandwidthEstimator(c.bw, c.alpha, c.headroom); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestBandwidthEWMAConverges(t *testing.T) {
	b, err := NewBandwidthEstimator(1_000_000, 0.3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Feed a steady 500 kB/s link; the estimate must converge to it.
	for i := 0; i < 50; i++ {
		if err := b.ObserveTransfer(500_000, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	est, n := b.Estimate()
	if n != 50 {
		t.Errorf("samples = %d", n)
	}
	if math.Abs(est-500_000)/500_000 > 0.01 {
		t.Errorf("estimate %v, want ≈500000", est)
	}
}

func TestBandwidthObserveValidation(t *testing.T) {
	b, err := NewBandwidthEstimator(1000, 0.3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ObserveTransfer(0, 1); err == nil {
		t.Error("zero bytes accepted")
	}
	if err := b.ObserveTransfer(100, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestTrainingDeadlineConversion(t *testing.T) {
	// The paper's §6.5 example: ResNet50 ≈ 51.2 Mb over 5 Mbps LTE ≈ 10.2 s
	// of upload. 5 Mbps = 625_000 B/s; 51.2 Mb = 6.4 MB.
	b, err := NewBandwidthEstimator(625_000, 0.3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	const payload = 6_400_000
	up, err := b.UploadTime(payload)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(up-10.24) > 0.05 {
		t.Errorf("upload time %v, want ≈10.24 s", up)
	}
	train, err := b.TrainingDeadline(60, payload)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(train-(60-up)) > 1e-9 {
		t.Errorf("training deadline %v, want %v", train, 60-up)
	}
	// Upload alone exceeding the reporting deadline must error.
	if _, err := b.TrainingDeadline(5, payload); err == nil {
		t.Error("doomed round accepted")
	}
	if _, err := b.TrainingDeadline(-1, payload); err == nil {
		t.Error("negative reporting deadline accepted")
	}
	if _, err := b.UploadTime(0); err == nil {
		t.Error("zero payload accepted")
	}
}

func TestHeadroomShortensTrainingBudget(t *testing.T) {
	tight, err := NewBandwidthEstimator(1_000_000, 0.3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	padded, err := NewBandwidthEstimator(1_000_000, 0.3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tight.TrainingDeadline(30, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := padded.TrainingDeadline(30, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if b >= a {
		t.Errorf("headroom should shrink the training budget: %v vs %v", b, a)
	}
}

func TestModelPayloadBytes(t *testing.T) {
	if got := ModelPayloadBytes(0); got <= 0 {
		t.Errorf("framing-only payload %d", got)
	}
	if got := ModelPayloadBytes(1000); got < 8000 {
		t.Errorf("payload %d too small for 1000 params", got)
	}
}

// reportingParticipant is a fake Participant with a fixed energy profile.
type reportingParticipant struct {
	id     string
	energy float64
}

func (p *reportingParticipant) ID() string                        { return p.id }
func (p *reportingParticipant) TMinFor(jobs int) (float64, error) { return float64(jobs), nil }
func (p *reportingParticipant) Round(req RoundRequest) (RoundResponse, error) {
	return RoundResponse{
		ClientID:    p.id,
		Params:      req.Params,
		NumExamples: 10,
		Report:      core.RoundReport{Energy: p.energy, DeadlineMet: true},
	}, nil
}

func TestEnergyAwareSelectorPrefersEfficientClients(t *testing.T) {
	sel := NewEnergyAwareSelector(1, 0.0) // no exploration: pure exploitation
	pool := []Participant{
		&reportingParticipant{id: "hungry", energy: 100},
		&reportingParticipant{id: "efficient", energy: 10},
		&reportingParticipant{id: "medium", energy: 50},
	}
	// Build history.
	for _, p := range pool {
		resp, err := p.Round(RoundRequest{})
		if err != nil {
			t.Fatal(err)
		}
		sel.ObserveRound([]RoundResponse{resp})
	}
	picked := sel.Select(1, pool, 1)
	if len(picked) != 1 || picked[0].ID() != "efficient" {
		t.Errorf("picked %v, want the efficient client", ids(picked))
	}
	picked = sel.Select(2, pool, 2)
	if len(picked) != 2 {
		t.Fatalf("picked %d", len(picked))
	}
	for _, p := range picked {
		if p.ID() == "hungry" {
			t.Error("hungry client selected over cheaper peers")
		}
	}
}

func TestEnergyAwareSelectorExploresUnseenClients(t *testing.T) {
	sel := NewEnergyAwareSelector(2, 0.5)
	pool := []Participant{
		&reportingParticipant{id: "known-cheap", energy: 1},
		&reportingParticipant{id: "known-cheap-2", energy: 2},
		&reportingParticipant{id: "unseen", energy: 999},
	}
	// Only the first two have history.
	for _, p := range pool[:2] {
		resp, err := p.Round(RoundRequest{})
		if err != nil {
			t.Fatal(err)
		}
		sel.ObserveRound([]RoundResponse{resp})
	}
	picked := sel.Select(1, pool, 2)
	found := false
	for _, p := range picked {
		if p.ID() == "unseen" {
			found = true
		}
	}
	if !found {
		t.Errorf("exploration quota ignored the unseen client: %v", ids(picked))
	}
}

func TestEnergyAwareSelectorHandlesOversizedK(t *testing.T) {
	sel := NewEnergyAwareSelector(3, 0.25)
	pool := []Participant{
		&reportingParticipant{id: "a", energy: 1},
		&reportingParticipant{id: "b", energy: 2},
	}
	picked := sel.Select(1, pool, 10)
	if len(picked) != 2 {
		t.Errorf("picked %d of 2", len(picked))
	}
	seen := map[string]bool{}
	for _, p := range picked {
		if seen[p.ID()] {
			t.Errorf("duplicate selection %s", p.ID())
		}
		seen[p.ID()] = true
	}
}

func ids(ps []Participant) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.ID()
	}
	return out
}
