package fl

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"bofl/internal/core"
	"bofl/internal/device"
	"bofl/internal/faultinject"
	"bofl/internal/ml"
	"bofl/internal/simclock"
)

// The scenario matrix sweeps the aggregation plugin layer across the axes the
// paper's deployment regime actually varies: algorithm × data heterogeneity
// (Dirichlet α) × participation bias × fault injection. Every cell asserts
// the three invariants the plugin refactor promised:
//
//  1. run-twice byte-identity at a fixed BOFL_CHAOS_SEED (replayability);
//  2. the streaming and tree folds match a naive batch reference bit for bit,
//     per algorithm (the exact accumulator makes fold shape irrelevant);
//  3. quorum dropout renormalizes with each algorithm's own semantics.
//
// CI's scenario-smoke job runs the reduced selection
// -run 'TestScenarioMatrix/(fedavg|scaffold)/(a0.1|a10)' under -race; the
// full matrix runs here.

// scenarioSpec identifies one cell of the matrix.
type scenarioSpec struct {
	alg    string
	mu     float64 // fedprox proximal coefficient
	alpha  float64 // dirichlet concentration
	biased bool    // power/availability-biased participation
	chaos  bool    // seeded drop/corrupt faults + quorum
}

// scenarioAlgs is every registered aggregator with its cell parameters.
var scenarioAlgs = []struct {
	name string
	mu   float64
}{
	{AlgFedAvg, 0},
	{AlgFedProx, 0.1},
	{AlgFedNova, 0},
	{AlgScaffold, 0},
}

// recorderParticipant captures a deep copy of each response it produces so a
// cell can rebuild the exact survivor set for the batch reference. The copy
// is taken before the fault layer gets a chance to corrupt the frame.
type recorderParticipant struct {
	inner Participant
	mu    sync.Mutex
	got   map[int]RoundResponse
}

func (p *recorderParticipant) ID() string                        { return p.inner.ID() }
func (p *recorderParticipant) TMinFor(jobs int) (float64, error) { return p.inner.TMinFor(jobs) }

func (p *recorderParticipant) Round(req RoundRequest) (RoundResponse, error) {
	resp, err := p.inner.Round(req)
	if err == nil {
		cp := resp
		cp.Params = append([]float64(nil), resp.Params...)
		cp.Aux = append([]float64(nil), resp.Aux...)
		p.mu.Lock()
		p.got[req.Round] = cp
		p.mu.Unlock()
	}
	return resp, err
}

// scenarioClient is algClient over an externally partitioned shard.
func scenarioClient(t *testing.T, id string, data []ml.Example, seed int64, stepScale int) *Client {
	t.Helper()
	dev := device.JetsonAGX()
	model, err := ml.NewMLP(8, 8, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.NewPerformant(dev.Space())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(ClientConfig{
		ID:         id,
		Device:     dev,
		Workload:   device.ViT,
		Model:      model,
		Data:       data,
		BatchSize:  8,
		LearnRate:  0.2,
		Controller: ctrl,
		Seed:       seed,
		StepScale:  stepScale,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// scenarioWeights maps the fleet's client ids to participation weights: the
// well-provisioned high-index clients are more available, and the bias term
// skews selection toward low-power devices, as an energy-aware server would.
func scenarioWeights(t *testing.T, n int) map[string]float64 {
	t.Helper()
	out := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		avail := 0.35 + 0.07*float64(i)
		powerW := 4.0 + 3.0*float64(i%4)
		w, err := device.ParticipationWeight(avail, powerW, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		out[fmt.Sprintf("s%d", i)] = w
	}
	return out
}

// roundOutcome is one round's observable result: either an abort (err) or a
// committed model plus the ids whose updates were folded.
type roundOutcome struct {
	err       string
	params    []float64
	survivors []string
}

// runScenario builds a fresh federation for the cell and runs it, checking
// the streaming (or tree) fold against the batch reference after every
// committed round. Everything — clients, selector, aggregator state, fault
// plan — is reconstructed per call, so two calls with the same arguments must
// produce identical outcome streams.
func runScenario(t *testing.T, spec scenarioSpec, tree bool, seed int64, rounds int) []roundOutcome {
	t.Helper()
	const nClients = 8
	examples, err := ml.Blobs(240, 8, 4, 0.6, 7)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := ml.PartitionNonIID(examples, nClients, 4, spec.alpha, 11)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*recorderParticipant, nClients)
	var initial []float64
	for i := range recs {
		c := scenarioClient(t, fmt.Sprintf("s%d", i), shards[i], int64(i+1), 1+i%3)
		if i == 0 {
			initial = c.Params()
		}
		recs[i] = &recorderParticipant{
			inner: &LocalParticipant{Client: c},
			got:   make(map[int]RoundResponse),
		}
	}
	cfg := ServerConfig{
		InitialParams: initial,
		Jobs:          2,
		DeadlineRatio: 2,
		Seed:          42,
		Aggregator:    mustAgg(t, spec.alg, spec.mu),
	}
	if tree {
		cfg.Tree = &TreeConfig{Fanout: 3}
	}
	if spec.biased {
		weights := scenarioWeights(t, nClients)
		cfg.Selector = NewBiasedSelector(1234, func(id string) float64 { return weights[id] })
		cfg.ParticipantsPerRound = 5
	}
	if spec.chaos {
		cfg.Quorum = 0.5
		cfg.TolerateDropouts = true
		cfg.Clock = simclock.NewSim(time.Unix(0, 0))
		cfg.FaultPolicy = &faultinject.Plan{
			Seed:    seed,
			Default: faultinject.Profile{Drop: 0.15, Corrupt: 0.05},
		}
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		srv.Register(r)
	}

	out := make([]roundOutcome, 0, rounds)
	for r := 1; r <= rounds; r++ {
		before := srv.GlobalParams()
		// SCAFFOLD's commit mutates the server control variate, so the batch
		// reference replays on a pre-round clone; the other aggregators are
		// stateless and a fresh instance is equivalent.
		var batchAgg Aggregator
		if sc, ok := srv.Aggregator().(*Scaffold); ok {
			batchAgg = sc.Clone()
		} else {
			batchAgg = mustAgg(t, spec.alg, spec.mu)
		}
		res, err := srv.RunRound()
		if err != nil {
			out = append(out, roundOutcome{err: err.Error()})
			continue
		}
		survivors := make([]RoundResponse, 0, len(res.Responses))
		ids := make([]string, 0, len(res.Responses))
		for _, meta := range res.Responses {
			resp, ok := recordedResponse(recs, meta.ClientID, r)
			if !ok {
				t.Fatalf("round %d: survivor %s has no recorded response", r, meta.ClientID)
			}
			survivors = append(survivors, resp)
			ids = append(ids, meta.ClientID)
		}
		batch, err := BatchAggregate(batchAgg, before, survivors, cfg.Jobs)
		if err != nil {
			t.Fatalf("round %d: batch reference: %v", r, err)
		}
		got := srv.GlobalParams()
		if !bitsEqual(got, batch) {
			t.Fatalf("round %d: %s fold diverged from batch reference over %d survivors",
				r, map[bool]string{false: "streaming", true: "tree"}[tree], len(survivors))
		}
		out = append(out, roundOutcome{params: got, survivors: ids})
	}
	return out
}

func recordedResponse(recs []*recorderParticipant, id string, round int) (RoundResponse, bool) {
	for _, rec := range recs {
		if rec.ID() != id {
			continue
		}
		rec.mu.Lock()
		resp, ok := rec.got[round]
		rec.mu.Unlock()
		return resp, ok
	}
	return RoundResponse{}, false
}

// compareOutcomes requires two runs' outcome streams to be byte-identical:
// same aborts, same survivor sets, same committed bits.
func compareOutcomes(t *testing.T, a, b []roundOutcome, nameA, nameB string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s ran %d rounds, %s ran %d", nameA, len(a), nameB, len(b))
	}
	for r := range a {
		if a[r].err != b[r].err {
			t.Fatalf("round %d: %s aborted with %q, %s with %q", r+1, nameA, a[r].err, nameB, b[r].err)
		}
		if !bitsEqual(a[r].params, b[r].params) {
			t.Fatalf("round %d: %s and %s committed different bits", r+1, nameA, nameB)
		}
		if len(a[r].survivors) != len(b[r].survivors) {
			t.Fatalf("round %d: survivor counts differ: %v vs %v", r+1, a[r].survivors, b[r].survivors)
		}
		for i := range a[r].survivors {
			if a[r].survivors[i] != b[r].survivors[i] {
				t.Fatalf("round %d: survivor sets differ: %v vs %v", r+1, a[r].survivors, b[r].survivors)
			}
		}
	}
}

// TestScenarioMatrix is the full sweep. Subtests are named
// alg/aα/selector/weather so CI can carve out reduced selections with -run.
func TestScenarioMatrix(t *testing.T) {
	seed := chaosSeed(t)
	const rounds = 2
	for _, alg := range scenarioAlgs {
		alg := alg
		t.Run(alg.name, func(t *testing.T) {
			for _, alpha := range []float64{0.1, 1, 10} {
				alpha := alpha
				t.Run(fmt.Sprintf("a%v", alpha), func(t *testing.T) {
					for _, biased := range []bool{false, true} {
						biased := biased
						t.Run(map[bool]string{false: "uniform", true: "biased"}[biased], func(t *testing.T) {
							for _, chaos := range []bool{false, true} {
								chaos := chaos
								t.Run(map[bool]string{false: "calm", true: "chaos"}[chaos], func(t *testing.T) {
									t.Parallel()
									spec := scenarioSpec{alg.name, alg.mu, alpha, biased, chaos}
									first := runScenario(t, spec, false, seed, rounds)
									again := runScenario(t, spec, false, seed, rounds)
									compareOutcomes(t, first, again, "run1", "run2")
									treeRun := runScenario(t, spec, true, seed, rounds)
									compareOutcomes(t, first, treeRun, "flat", "tree")
									if !chaos {
										for r, o := range first {
											if o.err != "" {
												t.Fatalf("calm cell aborted round %d: %s", r+1, o.err)
											}
										}
									}
								})
							}
						})
					}
				})
			}
		})
	}
}

// TestScenarioMatrixSchedulerInvariance reruns a representative chaos cell at
// GOMAXPROCS 1 and 4: goroutine scheduling must not leak into the committed
// bits (the ordered turnstile and seed-pure fault draws are the guarantees
// under test).
func TestScenarioMatrixSchedulerInvariance(t *testing.T) {
	seed := chaosSeed(t)
	spec := scenarioSpec{alg: AlgScaffold, alpha: 0.1, biased: true, chaos: true}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	oneFlat := runScenario(t, spec, false, seed, 2)
	oneTree := runScenario(t, spec, true, seed, 2)
	runtime.GOMAXPROCS(4)
	fourFlat := runScenario(t, spec, false, seed, 2)
	fourTree := runScenario(t, spec, true, seed, 2)
	compareOutcomes(t, oneFlat, fourFlat, "procs=1", "procs=4")
	compareOutcomes(t, oneTree, fourTree, "procs=1/tree", "procs=4/tree")
	compareOutcomes(t, oneFlat, oneTree, "flat", "tree")
}

// TestScenarioQuorumRenormalization scripts a dropout under quorum for every
// algorithm and pins the committed model to the batch reference over the
// survivors only — FedAvg re-divides by surviving weight, FedNova recomputes
// τ_eff over surviving paces, SCAFFOLD means the variate over the surviving
// count. A reference over ALL selected clients must NOT match, or the
// renormalization is vacuous.
func TestScenarioQuorumRenormalization(t *testing.T) {
	const jobs = 3
	for _, alg := range scenarioAlgs {
		alg := alg
		t.Run(alg.name, func(t *testing.T) {
			stubs := []*algStub{
				{id: "q0", params: []float64{1, 0}, n: 10, steps: 3, aux: []float64{1, 0}},
				{id: "q1", params: []float64{0, 1}, n: 20, steps: 6, aux: []float64{0, 1}},
				{id: "q2", params: []float64{4, 4}, n: 40, steps: 9, aux: []float64{2, 2}},
				{id: "q3", params: []float64{1, 1}, n: 10, steps: 3, aux: []float64{-1, 1}},
				{id: "q4", params: []float64{2, 0}, n: 30, steps: 6, aux: []float64{1, -1}},
			}
			srv, err := NewServer(ServerConfig{
				InitialParams:    []float64{0, 0},
				Jobs:             jobs,
				DeadlineRatio:    2,
				Seed:             5,
				Quorum:           0.5,
				TolerateDropouts: true,
				Clock:            simclock.NewSim(time.Unix(0, 0)),
				FaultPolicy: faultinject.Scripted{
					{Layer: faultinject.LayerParticipant, Client: "q2", Round: 1}: {Drop: true},
				},
				Aggregator: mustAgg(t, alg.name, alg.mu),
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range stubs {
				srv.Register(s)
			}
			res, err := srv.RunRound()
			if err != nil {
				t.Fatal(err)
			}
			dropped := false
			for _, id := range res.Dropped {
				dropped = dropped || id == "q2"
			}
			if !dropped {
				t.Fatalf("q2 not dropped: %v", res.Dropped)
			}
			survivors := append(append([]*algStub(nil), stubs[:2]...), stubs[3:]...)
			want, err := BatchAggregate(mustAgg(t, alg.name, alg.mu), []float64{0, 0},
				algStubResponses(t, survivors, 1, jobs), jobs)
			if err != nil {
				t.Fatal(err)
			}
			if got := srv.GlobalParams(); !bitsEqual(got, want) {
				t.Fatalf("committed %v, want survivor-renormalized %v", got, want)
			}
			naive, err := BatchAggregate(mustAgg(t, alg.name, alg.mu), []float64{0, 0},
				algStubResponses(t, stubs, 1, jobs), jobs)
			if err != nil {
				t.Fatal(err)
			}
			if bitsEqual(srv.GlobalParams(), naive) {
				t.Fatal("dropout did not change the aggregate — renormalization untested")
			}
		})
	}
}
