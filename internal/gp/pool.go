package gp

import "sync"

// f64Pool recycles the large float64 scratch slabs behind fantasy chains and
// hyperparameter-search workspaces, mirroring the codec's pooled wire
// buffers: Get returns a slice of at least the requested length (contents
// undefined), Put recycles it. Callers must fully overwrite every element
// they read — the pool never zeroes, and the numeric kernels are written so
// stale contents are unreachable (only explicitly written prefixes are read).
var f64Pool = sync.Pool{}

func getF64(n int) []float64 {
	if v := f64Pool.Get(); v != nil {
		s := v.([]float64)
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]float64, n)
}

func putF64(s []float64) {
	if cap(s) == 0 {
		return
	}
	f64Pool.Put(s[:cap(s)]) //nolint:staticcheck // slice header boxing is fine here
}
