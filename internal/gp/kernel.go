package gp

import (
	"fmt"
	"math"
)

// Kernel is a positive-definite covariance function over real vectors.
type Kernel interface {
	// Eval returns k(x, y). x and y must have the dimensionality the
	// kernel was constructed with.
	Eval(x, y []float64) float64
	// Dim returns the expected input dimensionality.
	Dim() int
}

// Matern52 is the Matérn-5/2 kernel with ARD (per-dimension) lengthscales and
// a signal variance:
//
//	k(x,y) = σ² · (1 + √5 r + 5r²/3) · exp(−√5 r),  r² = Σ ((x_i−y_i)/ℓ_i)²
//
// This is the prior the BoFL paper uses for both objective surrogates (§4.3);
// it yields twice-differentiable sample paths, which captures a large variety
// of function properties without the over-smoothness of the RBF kernel.
type Matern52 struct {
	Variance     float64   // σ², must be > 0
	Lengthscales []float64 // ℓ, one per input dimension, each > 0
}

var _ Kernel = (*Matern52)(nil)

// NewMatern52 constructs a Matérn-5/2 kernel with the given signal variance
// and per-dimension lengthscales.
func NewMatern52(variance float64, lengthscales []float64) (*Matern52, error) {
	if variance <= 0 {
		return nil, fmt.Errorf("gp: matern52 variance %v must be positive", variance)
	}
	if len(lengthscales) == 0 {
		return nil, fmt.Errorf("gp: matern52 needs at least one lengthscale")
	}
	for i, l := range lengthscales {
		if l <= 0 {
			return nil, fmt.Errorf("gp: matern52 lengthscale[%d]=%v must be positive", i, l)
		}
	}
	ls := make([]float64, len(lengthscales))
	copy(ls, lengthscales)
	return &Matern52{Variance: variance, Lengthscales: ls}, nil
}

// Dim returns the input dimensionality.
func (k *Matern52) Dim() int { return len(k.Lengthscales) }

// Eval returns the Matérn-5/2 covariance between x and y.
func (k *Matern52) Eval(x, y []float64) float64 {
	r2 := 0.0
	for i := range k.Lengthscales {
		d := (x[i] - y[i]) / k.Lengthscales[i]
		r2 += d * d
	}
	r := math.Sqrt(r2)
	s5r := math.Sqrt(5) * r
	return k.Variance * (1 + s5r + 5*r2/3) * math.Exp(-s5r)
}

// RBF is the squared-exponential kernel with ARD lengthscales:
//
//	k(x,y) = σ² · exp(−½ Σ ((x_i−y_i)/ℓ_i)²)
//
// Provided as an alternative prior for ablation experiments.
type RBF struct {
	Variance     float64
	Lengthscales []float64
}

var _ Kernel = (*RBF)(nil)

// NewRBF constructs a squared-exponential kernel.
func NewRBF(variance float64, lengthscales []float64) (*RBF, error) {
	if variance <= 0 {
		return nil, fmt.Errorf("gp: rbf variance %v must be positive", variance)
	}
	if len(lengthscales) == 0 {
		return nil, fmt.Errorf("gp: rbf needs at least one lengthscale")
	}
	for i, l := range lengthscales {
		if l <= 0 {
			return nil, fmt.Errorf("gp: rbf lengthscale[%d]=%v must be positive", i, l)
		}
	}
	ls := make([]float64, len(lengthscales))
	copy(ls, lengthscales)
	return &RBF{Variance: variance, Lengthscales: ls}, nil
}

// Dim returns the input dimensionality.
func (k *RBF) Dim() int { return len(k.Lengthscales) }

// Eval returns the squared-exponential covariance between x and y.
func (k *RBF) Eval(x, y []float64) float64 {
	r2 := 0.0
	for i := range k.Lengthscales {
		d := (x[i] - y[i]) / k.Lengthscales[i]
		r2 += d * d
	}
	return k.Variance * math.Exp(-0.5*r2)
}

// GramMatrix builds the n×n covariance matrix K with K_ij = k(xs[i], xs[j])
// plus noise² on the diagonal.
func GramMatrix(k Kernel, xs [][]float64, noise float64) *Matrix {
	n := len(xs)
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := k.Eval(xs[i], xs[j])
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
		m.Set(i, i, m.At(i, i)+noise*noise)
	}
	return m
}
