package gp

import (
	"fmt"
	"math"
)

// Kernel is a positive-definite covariance function over real vectors.
type Kernel interface {
	// Eval returns k(x, y). x and y must have the dimensionality the
	// kernel was constructed with.
	Eval(x, y []float64) float64
	// Dim returns the expected input dimensionality.
	Dim() int
}

// Matern52 is the Matérn-5/2 kernel with ARD (per-dimension) lengthscales and
// a signal variance:
//
//	k(x,y) = σ² · (1 + √5 r + 5r²/3) · exp(−√5 r),  r² = Σ ((x_i−y_i)/ℓ_i)²
//
// This is the prior the BoFL paper uses for both objective surrogates (§4.3);
// it yields twice-differentiable sample paths, which captures a large variety
// of function properties without the over-smoothness of the RBF kernel.
type Matern52 struct {
	Variance     float64   // σ², must be > 0
	Lengthscales []float64 // ℓ, one per input dimension, each > 0
}

var _ Kernel = (*Matern52)(nil)

// NewMatern52 constructs a Matérn-5/2 kernel with the given signal variance
// and per-dimension lengthscales.
func NewMatern52(variance float64, lengthscales []float64) (*Matern52, error) {
	if variance <= 0 {
		return nil, fmt.Errorf("gp: matern52 variance %v must be positive", variance)
	}
	if len(lengthscales) == 0 {
		return nil, fmt.Errorf("gp: matern52 needs at least one lengthscale")
	}
	for i, l := range lengthscales {
		if l <= 0 {
			return nil, fmt.Errorf("gp: matern52 lengthscale[%d]=%v must be positive", i, l)
		}
	}
	ls := make([]float64, len(lengthscales))
	copy(ls, lengthscales)
	return &Matern52{Variance: variance, Lengthscales: ls}, nil
}

// Dim returns the input dimensionality.
func (k *Matern52) Dim() int { return len(k.Lengthscales) }

// Eval returns the Matérn-5/2 covariance between x and y.
func (k *Matern52) Eval(x, y []float64) float64 {
	r2 := 0.0
	for i := range k.Lengthscales {
		d := (x[i] - y[i]) / k.Lengthscales[i]
		r2 += d * d
	}
	r := math.Sqrt(r2)
	s5r := math.Sqrt(5) * r
	return k.Variance * (1 + s5r + 5*r2/3) * math.Exp(-s5r)
}

// RBF is the squared-exponential kernel with ARD lengthscales:
//
//	k(x,y) = σ² · exp(−½ Σ ((x_i−y_i)/ℓ_i)²)
//
// Provided as an alternative prior for ablation experiments.
type RBF struct {
	Variance     float64
	Lengthscales []float64
}

var _ Kernel = (*RBF)(nil)

// NewRBF constructs a squared-exponential kernel.
func NewRBF(variance float64, lengthscales []float64) (*RBF, error) {
	if variance <= 0 {
		return nil, fmt.Errorf("gp: rbf variance %v must be positive", variance)
	}
	if len(lengthscales) == 0 {
		return nil, fmt.Errorf("gp: rbf needs at least one lengthscale")
	}
	for i, l := range lengthscales {
		if l <= 0 {
			return nil, fmt.Errorf("gp: rbf lengthscale[%d]=%v must be positive", i, l)
		}
	}
	ls := make([]float64, len(lengthscales))
	copy(ls, lengthscales)
	return &RBF{Variance: variance, Lengthscales: ls}, nil
}

// Dim returns the input dimensionality.
func (k *RBF) Dim() int { return len(k.Lengthscales) }

// Eval returns the squared-exponential covariance between x and y.
func (k *RBF) Eval(x, y []float64) float64 {
	r2 := 0.0
	for i := range k.Lengthscales {
		d := (x[i] - y[i]) / k.Lengthscales[i]
		r2 += d * d
	}
	return k.Variance * math.Exp(-0.5*r2)
}

// The devirtualized sweeps below are the numeric hot paths: they strength-
// reduce the per-dimension division to a multiplication by a precomputed
// reciprocal lengthscale. That shifts individual covariance values by at most
// an ulp per dimension relative to Eval, so every internal consumer (the Gram
// build, predict rows, Cholesky row extension, candidate caches) goes through
// these sweeps — they are all mutually bit-consistent, which is what the
// exact-equivalence tests (rank-1 update vs refit) rely on. Eval remains the
// division-based reference for external callers and the generic fallback.

// maxStackDim bounds the reciprocal-lengthscale scratch that lives on the
// stack; larger dimensionalities fall back to a heap allocation.
const maxStackDim = 24

func reciprocalsInto(ls []float64, buf []float64) []float64 {
	var ils []float64
	if len(ls) <= len(buf) {
		ils = buf[:len(ls)]
	} else {
		ils = make([]float64, len(ls))
	}
	for d, l := range ls {
		ils[d] = 1 / l
	}
	return ils
}

// priorVariance returns k(x, x). For the stationary kernels this is exactly
// the signal variance (r = 0 makes every remaining factor exactly 1), so the
// kernel sweep is skipped entirely.
func priorVariance(k Kernel, x []float64) float64 {
	switch kk := k.(type) {
	case *Matern52:
		return kk.Variance
	case *RBF:
		return kk.Variance
	default:
		return k.Eval(x, x)
	}
}

// GramMatrix builds the n×n covariance matrix K with K_ij = k(xs[i], xs[j])
// plus noise² on the diagonal.
func GramMatrix(k Kernel, xs [][]float64, noise float64) *Matrix {
	m := NewMatrix(len(xs), len(xs))
	GramInto(k, xs, noise, m)
	return m
}

// GramInto is GramMatrix into a caller-provided n×n matrix.
func GramInto(k Kernel, xs [][]float64, noise float64, m *Matrix) {
	gramLowerInto(k, xs, noise, m)
	// Mirror the strictly-lower triangle into the upper one.
	n := len(xs)
	d, stride := m.Data, m.Cols
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			d[j*stride+i] = d[i*stride+j]
		}
	}
}

// gramLowerInto fills the lower triangle (diagonal included, with noise²
// added) of m with the covariance of xs against itself, leaving the strictly
// upper triangle untouched. This is all the in-place Cholesky factorization
// reads, so Fit skips the mirror pass.
func gramLowerInto(k Kernel, xs [][]float64, noise float64, m *Matrix) {
	n := len(xs)
	data, stride := m.Data, m.Cols
	diag := noise * noise
	var ilsBuf [maxStackDim]float64
	switch kk := k.(type) {
	case *Matern52:
		v := kk.Variance
		ils := reciprocalsInto(kk.Lengthscales, ilsBuf[:])
		for i := 0; i < n; i++ {
			xi := xs[i]
			row := data[i*stride : i*stride+i+1]
			for j := 0; j < i; j++ {
				xj := xs[j]
				r2 := 0.0
				for d := range ils {
					dd := (xi[d] - xj[d]) * ils[d]
					r2 += dd * dd
				}
				r := math.Sqrt(r2)
				s5r := math.Sqrt(5) * r
				row[j] = v * (1 + s5r + 5*r2/3) * math.Exp(-s5r)
			}
			row[i] = v + diag
		}
	case *RBF:
		v := kk.Variance
		ils := reciprocalsInto(kk.Lengthscales, ilsBuf[:])
		for i := 0; i < n; i++ {
			xi := xs[i]
			row := data[i*stride : i*stride+i+1]
			for j := 0; j < i; j++ {
				xj := xs[j]
				r2 := 0.0
				for d := range ils {
					dd := (xi[d] - xj[d]) * ils[d]
					r2 += dd * dd
				}
				row[j] = v * math.Exp(-0.5*r2)
			}
			row[i] = v + diag
		}
	default:
		for i := 0; i < n; i++ {
			row := data[i*stride : i*stride+i+1]
			for j := 0; j < i; j++ {
				row[j] = k.Eval(xs[i], xs[j])
			}
			row[i] = k.Eval(xs[i], xs[i]) + diag
		}
	}
}

// kernel1 evaluates a single covariance k(x, y) with the same reciprocal-
// lengthscale arithmetic as the sweeps, so mixing single evaluations with row
// sweeps stays bit-consistent.
func kernel1(k Kernel, x, y []float64) float64 {
	switch kk := k.(type) {
	case *Matern52:
		r2 := 0.0
		for d, l := range kk.Lengthscales {
			dd := (x[d] - y[d]) * (1 / l)
			r2 += dd * dd
		}
		r := math.Sqrt(r2)
		s5r := math.Sqrt(5) * r
		return kk.Variance * (1 + s5r + 5*r2/3) * math.Exp(-s5r)
	case *RBF:
		r2 := 0.0
		for d, l := range kk.Lengthscales {
			dd := (x[d] - y[d]) * (1 / l)
			r2 += dd * dd
		}
		return kk.Variance * math.Exp(-0.5*r2)
	default:
		return k.Eval(x, y)
	}
}

// kernelRow fills ks[i] = k(x, xs[i]) with the same devirtualized arithmetic
// as gramLowerInto (reciprocal lengthscales), so a row computed here matches
// the corresponding Gram row bit-for-bit. ks must have len ≥ len(xs).
func kernelRow(k Kernel, x []float64, xs [][]float64, ks []float64) {
	var ilsBuf [maxStackDim]float64
	switch kk := k.(type) {
	case *Matern52:
		v := kk.Variance
		ils := reciprocalsInto(kk.Lengthscales, ilsBuf[:])
		for i, xi := range xs {
			r2 := 0.0
			for d := range ils {
				dd := (x[d] - xi[d]) * ils[d]
				r2 += dd * dd
			}
			r := math.Sqrt(r2)
			s5r := math.Sqrt(5) * r
			ks[i] = v * (1 + s5r + 5*r2/3) * math.Exp(-s5r)
		}
	case *RBF:
		v := kk.Variance
		ils := reciprocalsInto(kk.Lengthscales, ilsBuf[:])
		for i, xi := range xs {
			r2 := 0.0
			for d := range ils {
				dd := (x[d] - xi[d]) * ils[d]
				r2 += dd * dd
			}
			ks[i] = v * math.Exp(-0.5*r2)
		}
	default:
		for i, xi := range xs {
			ks[i] = k.Eval(x, xi)
		}
	}
}

// kernelRowMu is kernelRow fused with the posterior-mean dot product: it
// returns Σ ks[i]·alpha[i] accumulated in the same ascending order
// Dot(ks, alpha) uses, while filling ks — one pass instead of two,
// bit-identical to the separate sweep.
func kernelRowMu(k Kernel, x []float64, xs [][]float64, ks, alpha []float64) float64 {
	mu := 0.0
	var ilsBuf [maxStackDim]float64
	switch kk := k.(type) {
	case *Matern52:
		v := kk.Variance
		ils := reciprocalsInto(kk.Lengthscales, ilsBuf[:])
		for i, xi := range xs {
			r2 := 0.0
			for d := range ils {
				dd := (x[d] - xi[d]) * ils[d]
				r2 += dd * dd
			}
			r := math.Sqrt(r2)
			s5r := math.Sqrt(5) * r
			kv := v * (1 + s5r + 5*r2/3) * math.Exp(-s5r)
			ks[i] = kv
			mu += kv * alpha[i]
		}
	case *RBF:
		v := kk.Variance
		ils := reciprocalsInto(kk.Lengthscales, ilsBuf[:])
		for i, xi := range xs {
			r2 := 0.0
			for d := range ils {
				dd := (x[d] - xi[d]) * ils[d]
				r2 += dd * dd
			}
			kv := v * math.Exp(-0.5*r2)
			ks[i] = kv
			mu += kv * alpha[i]
		}
	default:
		for i, xi := range xs {
			kv := k.Eval(x, xi)
			ks[i] = kv
			mu += kv * alpha[i]
		}
	}
	return mu
}
