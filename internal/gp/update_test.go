package gp

import (
	"math"
	"math/rand"
	"testing"
)

func TestConditionFastMatchesRefit(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	k := mustMatern(t, 1, []float64{0.4, 0.6})
	var xs [][]float64
	var ys []float64
	for i := 0; i < 20; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, math.Sin(3*x[0])+x[1])
	}
	base, err := Fit(k, 0.05, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	newX := []float64{0.33, 0.77}
	newY := 1.5

	fast, err := base.ConditionFast(newX, newY)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := base.Condition(newX, newY)
	if err != nil {
		t.Fatal(err)
	}
	if fast.N() != 21 || slow.N() != 21 {
		t.Fatalf("N = %d / %d", fast.N(), slow.N())
	}
	// Predictions agree up to the (slightly different) standardization
	// constants the refit recomputes.
	for trial := 0; trial < 30; trial++ {
		q := []float64{rng.Float64(), rng.Float64()}
		mf, sf := fast.Predict(q)
		ms, ss := slow.Predict(q)
		if math.Abs(mf-ms) > 0.02*(1+math.Abs(ms)) {
			t.Errorf("mean at %v: fast %v vs refit %v", q, mf, ms)
		}
		if math.Abs(sf-ss) > 0.02*(1+ss) {
			t.Errorf("std at %v: fast %v vs refit %v", q, sf, ss)
		}
	}
}

func TestConditionFastInterpolatesNewPoint(t *testing.T) {
	k := mustMatern(t, 1, []float64{0.3})
	base, err := Fit(k, 1e-5, [][]float64{{0.1}, {0.9}}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	cond, err := base.ConditionFast([]float64{0.5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	mu, sigma := cond.Predict([]float64{0.5})
	if math.Abs(mu-5) > 0.05 {
		t.Errorf("posterior at conditioned point = %v, want ≈5", mu)
	}
	if sigma > 0.1 {
		t.Errorf("posterior std at conditioned point = %v, want ≈0", sigma)
	}
	// The receiver must be untouched.
	if base.N() != 2 {
		t.Error("ConditionFast mutated the receiver")
	}
}

func TestConditionFastDuplicatePoint(t *testing.T) {
	k := mustMatern(t, 1, []float64{0.3})
	base, err := Fit(k, 1e-6, [][]float64{{0.5}}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	// Conditioning on the exact same input must not produce NaNs.
	cond, err := base.ConditionFast([]float64{0.5}, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	mu, sigma := cond.Predict([]float64{0.5})
	if math.IsNaN(mu) || math.IsNaN(sigma) {
		t.Errorf("duplicate conditioning produced NaN: %v, %v", mu, sigma)
	}
}

func TestConditionFastValidation(t *testing.T) {
	k := mustMatern(t, 1, []float64{0.3})
	base, err := Fit(k, 0.01, [][]float64{{0.5}}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.ConditionFast([]float64{1, 2}, 1); err == nil {
		t.Error("wrong-dim point accepted")
	}
}

func BenchmarkConditionRefit(b *testing.B) {
	benchCondition(b, func(r *Regressor, x []float64, y float64) error {
		_, err := r.Condition(x, y)
		return err
	})
}

func BenchmarkConditionFast(b *testing.B) {
	benchCondition(b, func(r *Regressor, x []float64, y float64) error {
		_, err := r.ConditionFast(x, y)
		return err
	})
}

func benchCondition(b *testing.B, f func(*Regressor, []float64, float64) error) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	k, err := NewMatern52(1, []float64{0.3, 0.3, 0.3})
	if err != nil {
		b.Fatal(err)
	}
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		xs = append(xs, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
		ys = append(ys, rng.NormFloat64())
	}
	base, err := Fit(k, 0.05, xs, ys)
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.5, 0.5, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f(base, x, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFantasyChainMatchesConditionFast pins the fantasy chain's determinism
// contract: k chained Condition calls produce a regressor whose posterior is
// bit-identical to k nested ConditionFast calls, which copy the factor at
// every step.
func TestFantasyChainMatchesConditionFast(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	k := mustMatern(t, 1, []float64{0.4, 0.6})
	var xs [][]float64
	var ys []float64
	for i := 0; i < 18; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, math.Sin(3*x[0])+x[1])
	}
	base, err := Fit(k, 0.05, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	probes := make([][]float64, 20)
	for i := range probes {
		probes[i] = []float64{rng.Float64(), rng.Float64()}
	}

	const steps = 5
	fan := base.NewFantasy(steps)
	defer fan.Release()
	slow := base
	for step := 0; step < steps; step++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := 0.5 + rng.NormFloat64()

		fast, err := fan.Condition(x, y)
		if err != nil {
			t.Fatalf("step %d: chain: %v", step, err)
		}
		slow, err = slow.ConditionFast(x, y)
		if err != nil {
			t.Fatalf("step %d: nested: %v", step, err)
		}
		for _, q := range probes {
			mf, sf := fast.Predict(q)
			ms, ss := slow.Predict(q)
			if math.Float64bits(mf) != math.Float64bits(ms) || math.Float64bits(sf) != math.Float64bits(ss) {
				t.Fatalf("step %d: posterior at %v diverged: chain (%v, %v) vs nested (%v, %v)",
					step, q, mf, sf, ms, ss)
			}
		}
	}
}

// TestFantasyChainMatchesFullRefactorization is the rank-1-update-vs-refit
// exact-equivalence property: after every chained extension, the in-place
// grown factor must equal, bit for bit, a from-scratch scalar factorization
// of the full Gram matrix over the extended training set.
func TestFantasyChainMatchesFullRefactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	k := mustMatern(t, 1.3, []float64{0.5, 0.35})
	var xs [][]float64
	var ys []float64
	for i := 0; i < 15; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, rng.NormFloat64())
	}
	base, err := Fit(k, 0.08, xs, ys)
	if err != nil {
		t.Fatal(err)
	}

	const steps = 4
	fan := base.NewFantasy(steps)
	defer fan.Release()
	for step := 0; step < steps; step++ {
		cur, err := fan.Condition([]float64{rng.Float64(), rng.Float64()}, rng.NormFloat64())
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		n := cur.N()
		gram := NewMatrix(n, n)
		gramLowerInto(cur.kernel, cur.xs, cur.noise, gram)
		full, err := CholeskyScalar(gram)
		if err != nil {
			t.Fatalf("step %d: refactorization: %v", step, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				got := cur.chol.Data[i*cur.chol.Cols+j]
				want := full.At(i, j)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("step %d: L[%d,%d] = %v (rank-1 chain) vs %v (full refactorization)",
						step, i, j, got, want)
				}
			}
		}
	}
}
