package gp

import (
	"math"
	"math/rand"
	"testing"
)

func TestConditionFastMatchesRefit(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	k := mustMatern(t, 1, []float64{0.4, 0.6})
	var xs [][]float64
	var ys []float64
	for i := 0; i < 20; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, math.Sin(3*x[0])+x[1])
	}
	base, err := Fit(k, 0.05, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	newX := []float64{0.33, 0.77}
	newY := 1.5

	fast, err := base.ConditionFast(newX, newY)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := base.Condition(newX, newY)
	if err != nil {
		t.Fatal(err)
	}
	if fast.N() != 21 || slow.N() != 21 {
		t.Fatalf("N = %d / %d", fast.N(), slow.N())
	}
	// Predictions agree up to the (slightly different) standardization
	// constants the refit recomputes.
	for trial := 0; trial < 30; trial++ {
		q := []float64{rng.Float64(), rng.Float64()}
		mf, sf := fast.Predict(q)
		ms, ss := slow.Predict(q)
		if math.Abs(mf-ms) > 0.02*(1+math.Abs(ms)) {
			t.Errorf("mean at %v: fast %v vs refit %v", q, mf, ms)
		}
		if math.Abs(sf-ss) > 0.02*(1+ss) {
			t.Errorf("std at %v: fast %v vs refit %v", q, sf, ss)
		}
	}
}

func TestConditionFastInterpolatesNewPoint(t *testing.T) {
	k := mustMatern(t, 1, []float64{0.3})
	base, err := Fit(k, 1e-5, [][]float64{{0.1}, {0.9}}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	cond, err := base.ConditionFast([]float64{0.5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	mu, sigma := cond.Predict([]float64{0.5})
	if math.Abs(mu-5) > 0.05 {
		t.Errorf("posterior at conditioned point = %v, want ≈5", mu)
	}
	if sigma > 0.1 {
		t.Errorf("posterior std at conditioned point = %v, want ≈0", sigma)
	}
	// The receiver must be untouched.
	if base.N() != 2 {
		t.Error("ConditionFast mutated the receiver")
	}
}

func TestConditionFastDuplicatePoint(t *testing.T) {
	k := mustMatern(t, 1, []float64{0.3})
	base, err := Fit(k, 1e-6, [][]float64{{0.5}}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	// Conditioning on the exact same input must not produce NaNs.
	cond, err := base.ConditionFast([]float64{0.5}, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	mu, sigma := cond.Predict([]float64{0.5})
	if math.IsNaN(mu) || math.IsNaN(sigma) {
		t.Errorf("duplicate conditioning produced NaN: %v, %v", mu, sigma)
	}
}

func TestConditionFastValidation(t *testing.T) {
	k := mustMatern(t, 1, []float64{0.3})
	base, err := Fit(k, 0.01, [][]float64{{0.5}}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.ConditionFast([]float64{1, 2}, 1); err == nil {
		t.Error("wrong-dim point accepted")
	}
}

func BenchmarkConditionRefit(b *testing.B) {
	benchCondition(b, func(r *Regressor, x []float64, y float64) error {
		_, err := r.Condition(x, y)
		return err
	})
}

func BenchmarkConditionFast(b *testing.B) {
	benchCondition(b, func(r *Regressor, x []float64, y float64) error {
		_, err := r.ConditionFast(x, y)
		return err
	})
}

func benchCondition(b *testing.B, f func(*Regressor, []float64, float64) error) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	k, err := NewMatern52(1, []float64{0.3, 0.3, 0.3})
	if err != nil {
		b.Fatal(err)
	}
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		xs = append(xs, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
		ys = append(ys, rng.NormFloat64())
	}
	base, err := Fit(k, 0.05, xs, ys)
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.5, 0.5, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f(base, x, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}
