package gp

import (
	"fmt"
	"math"
	"math/rand"

	"bofl/internal/parallel"
)

// HyperOptions controls marginal-likelihood hyperparameter fitting.
type HyperOptions struct {
	// Dim is the input dimensionality. Required.
	Dim int
	// Restarts is the number of random restarts (default 8).
	Restarts int
	// Iters is the number of coordinate-descent sweeps per restart
	// (default 20).
	Iters int
	// Seed makes the random restarts deterministic.
	Seed int64
	// FixedNoise, when > 0, pins the observation-noise standard deviation
	// instead of optimizing it.
	FixedNoise float64
	// UseRBF selects the squared-exponential kernel instead of the default
	// Matérn-5/2 (ablation).
	UseRBF bool
}

// FitHyper fits a GP to (xs, ys) with kernel hyperparameters chosen by
// maximizing the log marginal likelihood. Optimization is a multi-start
// coordinate descent in log-space over signal variance, per-dimension
// lengthscales and (optionally) observation noise — simple, dependency-free,
// and reliable for the ≤ 4-D, ≤ 100-point problems BoFL encounters.
func FitHyper(xs [][]float64, ys []float64, opts HyperOptions) (*Regressor, error) {
	if opts.Dim <= 0 {
		return nil, fmt.Errorf("gp: FitHyper requires positive Dim, got %d", opts.Dim)
	}
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	restarts := opts.Restarts
	if restarts <= 0 {
		restarts = 8
	}
	iters := opts.Iters
	if iters <= 0 {
		iters = 20
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Parameter vector layout in log-space:
	// [log σ², log ℓ_1..log ℓ_d, log σₙ].
	nparams := 1 + opts.Dim + 1
	lower := make([]float64, nparams)
	upper := make([]float64, nparams)
	lower[0], upper[0] = math.Log(1e-2), math.Log(1e2) // variance
	for i := 0; i < opts.Dim; i++ {
		lower[1+i], upper[1+i] = math.Log(0.03), math.Log(10) // lengthscales (inputs in [0,1])
	}
	lower[nparams-1], upper[nparams-1] = math.Log(1e-4), math.Log(0.5) // noise

	eval := func(p []float64) (*Regressor, float64) {
		variance := math.Exp(p[0])
		ls := make([]float64, opts.Dim)
		for i := range ls {
			ls[i] = math.Exp(p[1+i])
		}
		noise := math.Exp(p[nparams-1])
		if opts.FixedNoise > 0 {
			noise = opts.FixedNoise
		}
		var k Kernel
		var err error
		if opts.UseRBF {
			k, err = NewRBF(variance, ls)
		} else {
			k, err = NewMatern52(variance, ls)
		}
		if err != nil {
			return nil, math.Inf(-1)
		}
		r, err := Fit(k, noise, xs, ys)
		if err != nil {
			return nil, math.Inf(-1)
		}
		return r, r.LogMarginalLikelihood()
	}

	// Starting points are drawn serially up front (restart 0 keeps the
	// deterministic default start), so the restarts become independent and
	// can fan out across the worker pool while consuming the exact RNG
	// stream the serial loop did.
	starts := make([][]float64, restarts)
	for restart := range starts {
		p := make([]float64, nparams)
		if restart == 0 {
			// Sensible default start: unit variance, medium
			// lengthscales, moderate noise.
			p[0] = 0
			for i := 0; i < opts.Dim; i++ {
				p[1+i] = math.Log(0.5)
			}
			p[nparams-1] = math.Log(0.05)
		} else {
			for i := range p {
				p[i] = lower[i] + rng.Float64()*(upper[i]-lower[i])
			}
		}
		starts[restart] = p
	}

	// Each restart runs its coordinate descent independently; the reduction
	// below is serial with lowest-restart-index tie-breaking on equal log
	// marginal likelihood, so parallel and serial searches select the same
	// model.
	models := make([]*Regressor, restarts)
	lls := make([]float64, restarts)
	parallel.For(restarts, func(restart int) {
		p := starts[restart]
		r, ll := eval(p)
		// Coordinate descent with shrinking step size.
		step := 1.0
		for it := 0; it < iters; it++ {
			improved := false
			for i := range p {
				if opts.FixedNoise > 0 && i == nparams-1 {
					continue
				}
				for _, dir := range []float64{1, -1} {
					cand := make([]float64, nparams)
					copy(cand, p)
					cand[i] = clamp(cand[i]+dir*step, lower[i], upper[i])
					if cand[i] == p[i] {
						continue
					}
					if r2, ll2 := eval(cand); ll2 > ll {
						p, r, ll = cand, r2, ll2
						improved = true
					}
				}
			}
			if !improved {
				step /= 2
				if step < 1e-3 {
					break
				}
			}
		}
		models[restart], lls[restart] = r, ll
	})

	var best *Regressor
	bestLL := math.Inf(-1)
	for restart, r := range models {
		if r != nil && lls[restart] > bestLL {
			best, bestLL = r, lls[restart]
		}
	}
	if best == nil {
		return nil, fmt.Errorf("gp: hyperparameter search found no valid model")
	}
	return best, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
