package gp

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"bofl/internal/parallel"
)

// HyperOptions controls marginal-likelihood hyperparameter fitting.
type HyperOptions struct {
	// Dim is the input dimensionality. Required.
	Dim int
	// Restarts is the number of random restarts (default 8).
	Restarts int
	// Iters is the number of coordinate-descent sweeps per restart
	// (default 20).
	Iters int
	// Seed makes the random restarts deterministic.
	Seed int64
	// FixedNoise, when > 0, pins the observation-noise standard deviation
	// instead of optimizing it.
	FixedNoise float64
	// UseRBF selects the squared-exponential kernel instead of the default
	// Matérn-5/2 (ablation).
	UseRBF bool
}

// fitWS is the per-restart hyperparameter-search workspace: every
// log-marginal-likelihood probe reuses the same Gram/factor matrix, solve
// vectors, kernel structs and parameter buffers, so a full coordinate
// descent allocates nothing per probe. Pooled across restarts and calls.
type fitWS struct {
	chol  *Matrix
	sy    []float64
	alpha []float64
	mat   Matern52
	rbf   RBF
	p     []float64
	cand  []float64
}

var fitWSPool sync.Pool

func getFitWS(n, dim, nparams int) *fitWS {
	ws, _ := fitWSPool.Get().(*fitWS)
	if ws == nil {
		ws = &fitWS{}
	}
	if ws.chol == nil || cap(ws.chol.Data) < n*n {
		ws.chol = &Matrix{Data: make([]float64, n*n)}
	}
	ws.chol.Rows, ws.chol.Cols = n, n
	ws.chol.Data = ws.chol.Data[:n*n]
	if cap(ws.sy) < n {
		ws.sy = make([]float64, n)
		ws.alpha = make([]float64, n)
	}
	if cap(ws.mat.Lengthscales) < dim {
		ws.mat.Lengthscales = make([]float64, dim)
		ws.rbf.Lengthscales = make([]float64, dim)
	}
	ws.mat.Lengthscales = ws.mat.Lengthscales[:dim]
	ws.rbf.Lengthscales = ws.rbf.Lengthscales[:dim]
	if cap(ws.p) < nparams {
		ws.p = make([]float64, nparams)
		ws.cand = make([]float64, nparams)
	}
	ws.p = ws.p[:nparams]
	ws.cand = ws.cand[:nparams]
	return ws
}

func putFitWS(ws *fitWS) { fitWSPool.Put(ws) }

// fitLL evaluates the log marginal likelihood of (xs, ys) under the given
// kernel and noise without constructing a Regressor: the same
// standardization, Gram build, jitter ladder and triangular solves as Fit,
// into the workspace's reused buffers. Returns −Inf when the Gram matrix is
// not positive definite even after jittering — exactly the cases where Fit
// would fail. Bit-identical to Fit followed by LogMarginalLikelihood.
func fitLL(kernel Kernel, noise float64, xs [][]float64, ys []float64, ws *fitWS) float64 {
	n := len(xs)
	mean, std := standardizeParams(ys)
	sy := ws.sy[:n]
	for i, y := range ys {
		sy[i] = (y - mean) / std
	}

	chol := ws.chol
	gramLowerInto(kernel, xs, noise, chol)
	err := CholeskyInPlace(chol)
	jitter, cumJitter := 1e-10, 0.0
	for attempt := 0; err != nil && attempt < 7; attempt++ {
		cumJitter += jitter
		jitter *= 10
		gramLowerInto(kernel, xs, noise, chol)
		for i := 0; i < n; i++ {
			chol.Set(i, i, chol.At(i, i)+cumJitter)
		}
		err = CholeskyInPlace(chol)
	}
	if err != nil {
		return math.Inf(-1)
	}
	alpha := ws.alpha[:n]
	CholeskySolveInto(chol, sy, alpha, alpha)
	return -0.5*Dot(sy, alpha) - 0.5*LogDetFromCholesky(chol) - 0.5*float64(n)*math.Log(2*math.Pi)
}

// FitHyper fits a GP to (xs, ys) with kernel hyperparameters chosen by
// maximizing the log marginal likelihood. Optimization is a multi-start
// coordinate descent in log-space over signal variance, per-dimension
// lengthscales and (optionally) observation noise — simple, dependency-free,
// and reliable for the ≤ 4-D, ≤ 100-point problems BoFL encounters.
//
// Search probes evaluate the likelihood only (fitLL, allocation-free through
// the pooled per-restart workspace); the winning parameter vector is refit
// once at the end, producing a model bit-identical to the historical
// fit-per-probe search at a fraction of the allocator traffic.
func FitHyper(xs [][]float64, ys []float64, opts HyperOptions) (*Regressor, error) {
	if opts.Dim <= 0 {
		return nil, fmt.Errorf("gp: FitHyper requires positive Dim, got %d", opts.Dim)
	}
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	restarts := opts.Restarts
	if restarts <= 0 {
		restarts = 8
	}
	iters := opts.Iters
	if iters <= 0 {
		iters = 20
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Parameter vector layout in log-space:
	// [log σ², log ℓ_1..log ℓ_d, log σₙ].
	nparams := 1 + opts.Dim + 1
	lower := make([]float64, nparams)
	upper := make([]float64, nparams)
	lower[0], upper[0] = math.Log(1e-2), math.Log(1e2) // variance
	for i := 0; i < opts.Dim; i++ {
		lower[1+i], upper[1+i] = math.Log(0.03), math.Log(10) // lengthscales (inputs in [0,1])
	}
	lower[nparams-1], upper[nparams-1] = math.Log(1e-4), math.Log(0.5) // noise

	// paramsOf decodes a log-space parameter vector: fills ls with the
	// lengthscales and returns variance and noise. Clamped log-space values
	// are always strictly positive, so no validation is needed.
	paramsOf := func(p, ls []float64) (variance, noise float64) {
		for i := range ls {
			ls[i] = math.Exp(p[1+i])
		}
		noise = math.Exp(p[nparams-1])
		if opts.FixedNoise > 0 {
			noise = opts.FixedNoise
		}
		return math.Exp(p[0]), noise
	}

	// Starting points are drawn serially up front (restart 0 keeps the
	// deterministic default start), so the restarts become independent and
	// can fan out across the worker pool while consuming the exact RNG
	// stream the serial loop did.
	starts := make([][]float64, restarts)
	for restart := range starts {
		p := make([]float64, nparams)
		if restart == 0 {
			// Sensible default start: unit variance, medium
			// lengthscales, moderate noise.
			p[0] = 0
			for i := 0; i < opts.Dim; i++ {
				p[1+i] = math.Log(0.5)
			}
			p[nparams-1] = math.Log(0.05)
		} else {
			for i := range p {
				p[i] = lower[i] + rng.Float64()*(upper[i]-lower[i])
			}
		}
		starts[restart] = p
	}

	// Each restart runs its coordinate descent independently; the reduction
	// below is serial with lowest-restart-index tie-breaking on equal log
	// marginal likelihood, so parallel and serial searches select the same
	// model.
	lls := make([]float64, restarts)
	parallel.For(restarts, func(restart int) {
		ws := getFitWS(len(xs), opts.Dim, nparams)
		defer putFitWS(ws)
		evalLL := func(p []float64) float64 {
			var k Kernel
			var noise float64
			if opts.UseRBF {
				ws.rbf.Variance, noise = paramsOf(p, ws.rbf.Lengthscales)
				k = &ws.rbf
			} else {
				ws.mat.Variance, noise = paramsOf(p, ws.mat.Lengthscales)
				k = &ws.mat
			}
			return fitLL(k, noise, xs, ys, ws)
		}
		p := ws.p
		copy(p, starts[restart])
		cand := ws.cand
		ll := evalLL(p)
		// Coordinate descent with shrinking step size.
		step := 1.0
		for it := 0; it < iters; it++ {
			improved := false
			for i := range p {
				if opts.FixedNoise > 0 && i == nparams-1 {
					continue
				}
				for _, dir := range [2]float64{1, -1} {
					copy(cand, p)
					cand[i] = clamp(cand[i]+dir*step, lower[i], upper[i])
					if cand[i] == p[i] {
						continue
					}
					if ll2 := evalLL(cand); ll2 > ll {
						p, cand = cand, p
						ll = ll2
						improved = true
					}
				}
			}
			if !improved {
				step /= 2
				if step < 1e-3 {
					break
				}
			}
		}
		// Publish the winning parameters by overwriting the start vector
		// (consumed above, dead afterwards).
		copy(starts[restart], p)
		lls[restart] = ll
	})

	bestRestart := -1
	bestLL := math.Inf(-1)
	for restart, ll := range lls {
		if !math.IsInf(ll, -1) && ll > bestLL {
			bestRestart, bestLL = restart, ll
		}
	}
	if bestRestart == -1 {
		return nil, fmt.Errorf("gp: hyperparameter search found no valid model")
	}
	// One final Fit of the winning parameters; Fit is deterministic, so
	// this is the exact model the winning probe evaluated.
	ls := make([]float64, opts.Dim)
	variance, noise := paramsOf(starts[bestRestart], ls)
	var k Kernel
	if opts.UseRBF {
		k = &RBF{Variance: variance, Lengthscales: ls}
	} else {
		k = &Matern52{Variance: variance, Lengthscales: ls}
	}
	best, err := Fit(k, noise, xs, ys)
	if err != nil {
		return nil, fmt.Errorf("gp: refit of selected hyperparameters: %w", err)
	}
	return best, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
