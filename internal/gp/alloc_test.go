package gp

import (
	"math/rand"
	"testing"
)

// TestPredictBatchIntoZeroAlloc pins the fused batch-predict path at zero
// steady-state allocations: with caller-provided outputs and scratch, scoring
// a candidate batch must never touch the heap.
func TestPredictBatchIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, batch = 40, 64
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		ys[i] = rng.NormFloat64()
	}
	k := mustMatern(t, 1, []float64{0.3, 0.3, 0.3})
	r, err := Fit(k, 0.05, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([][]float64, batch)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	mus := make([]float64, batch)
	sigmas := make([]float64, batch)
	scratch := make([]float64, 2*n)

	allocs := testing.AllocsPerRun(50, func() {
		r.PredictBatchInto(pts, mus, sigmas, scratch)
	})
	if allocs != 0 {
		t.Errorf("PredictBatchInto allocated %v times per run, want 0", allocs)
	}
}

// TestFantasyChainSteadyStateAllocs pins the conditioning chain's allocation
// behaviour: after the chain is built, each Condition step performs only the
// bookkeeping append of the regressor view — no factor copies, no fresh
// slabs.
func TestFantasyChainSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n = 30
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
		ys[i] = rng.NormFloat64()
	}
	k := mustMatern(t, 1, []float64{0.4, 0.4})
	base, err := Fit(k, 0.05, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5, 0.5}
	allocs := testing.AllocsPerRun(50, func() {
		fan := base.NewFantasy(1)
		if _, err := fan.Condition(x, 1.0); err != nil {
			t.Fatal(err)
		}
		fan.Release()
	})
	// One chain build + one step: the Fantasy struct, the xs header and the
	// returned Regressor view (struct + Matrix header) are the only heap
	// objects; all float slabs come from the pool (occasional per-P pool
	// misses add a couple more). n=30 would cost ~1000 words of factor
	// copying per run if the slabs were fresh, so a small constant pins the
	// pooled path.
	if allocs > 8 {
		t.Errorf("fantasy chain build+step allocated %v times per run, want ≤ 8", allocs)
	}
}
