package gp

import "fmt"

// Fantasy is a Kriging-believer conditioning chain: a preallocated workspace
// for repeatedly extending a regressor with fantasized observations without
// per-step factor copies or allocations. The factor grows in place inside one
// (n+extra)² slab — each Condition appends a single row (O(n²) total work for
// the triangular re-solve of alpha) and returns a leading-principal view.
//
// Only the most recently returned regressor is valid: a later Condition
// reuses the shared alpha buffer and factor slab. Fantasies are transient by
// design (they exist for the duration of one batch selection), and the base
// regressor is never mutated. Release returns the slabs to the package pool.
//
// Determinism: the appended factor row, the standardized target and the
// re-solved alpha are computed by exactly the code path ConditionFast uses on
// the same values, so a chain of k Condition calls is bit-identical to k
// nested ConditionFast calls — with zero copying of the factor prefix.
type Fantasy struct {
	cur    *Regressor
	stride int // row capacity: base n + extra
	dim    int
	chol   []float64 // stride×stride factor slab (pooled, lower triangle valid)
	xsBack []float64 // stride×dim appended-point storage (pooled)
	xs     [][]float64
	ys     []float64 // pooled
	alpha  []float64 // pooled
}

// NewFantasy prepares a conditioning chain on r with capacity for extra
// appended observations. The base factor's lower triangle is copied into the
// slab once; every subsequent extension is copy-free.
func (r *Regressor) NewFantasy(extra int) *Fantasy {
	n := len(r.xs)
	dim := r.kernel.Dim()
	stride := n + extra
	f := &Fantasy{
		cur:    r,
		stride: stride,
		dim:    dim,
		chol:   getF64(stride * stride),
		xsBack: getF64(stride * dim),
		xs:     make([][]float64, n, stride),
		ys:     getF64(stride),
		alpha:  getF64(stride),
	}
	for i := 0; i < n; i++ {
		copy(f.chol[i*stride:i*stride+i+1], r.chol.Data[i*r.chol.Cols:i*r.chol.Cols+i+1])
	}
	copy(f.xs, r.xs)
	copy(f.ys[:n], r.ys)
	return f
}

// Cur returns the chain's current regressor (the base, or the result of the
// latest Condition).
func (f *Fantasy) Cur() *Regressor { return f.cur }

// Condition extends the chain by one observation and returns the conditioned
// regressor, invalidating any regressor previously returned by this chain.
// Bit-identical to calling ConditionFast on the current regressor.
func (f *Fantasy) Condition(x []float64, y float64) (*Regressor, error) {
	cur := f.cur
	if len(x) != f.dim {
		return nil, fmt.Errorf("gp: point has dim %d, kernel expects %d", len(x), f.dim)
	}
	n := len(cur.xs)
	if n >= f.stride {
		return nil, fmt.Errorf("gp: fantasy capacity %d exhausted", f.stride)
	}

	// New factor row, solved in place in the slab: the covariance row is
	// written where the factor row will live and the forward substitution
	// overwrites it element by element (SolveLowerInto permits aliasing).
	row := f.chol[n*f.stride : n*f.stride+n]
	kernelRow(cur.kernel, x, cur.xs, row)
	kxx := priorVariance(cur.kernel, x) + cur.noise*cur.noise
	_, d := ExtendCholeskyRow(cur.chol, row, kxx, row)
	f.chol[n*f.stride+n] = d

	xrow := f.xsBack[n*f.dim : (n+1)*f.dim : (n+1)*f.dim]
	copy(xrow, x)
	f.xs = append(f.xs, xrow)
	f.ys[n] = (y - cur.mean) / cur.std

	view := &Matrix{Rows: n + 1, Cols: f.stride, Data: f.chol}
	alpha := f.alpha[:n+1]
	CholeskySolveInto(view, f.ys[:n+1], alpha, alpha)

	next := &Regressor{
		kernel: cur.kernel,
		noise:  cur.noise,
		xs:     f.xs[:n+1],
		mean:   cur.mean,
		std:    cur.std,
		chol:   view,
		alpha:  alpha,
		ys:     f.ys[:n+1],
	}
	f.cur = next
	return next, nil
}

// Release returns the chain's slabs to the package pool. The chain and every
// regressor it returned become invalid.
func (f *Fantasy) Release() {
	putF64(f.chol)
	putF64(f.xsBack)
	putF64(f.ys)
	putF64(f.alpha)
	f.chol, f.xsBack, f.ys, f.alpha, f.xs, f.cur = nil, nil, nil, nil, nil, nil
}
