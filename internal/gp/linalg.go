// Package gp implements Gaussian-process regression from scratch: dense
// linear algebra (Cholesky factorization and triangular solves), stationary
// kernels (Matérn-5/2 and squared-exponential with ARD lengthscales),
// posterior inference, and marginal-likelihood hyperparameter fitting.
//
// This is the surrogate-model layer of BoFL's multi-objective Bayesian
// optimizer. The paper (§4.3) models the two objectives T(·) and E(·) as two
// independent GPs with zero prior mean and Matérn-5/2 kernels; package mobo
// builds the EHVI acquisition on top of the posteriors produced here.
package gp

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is not
// (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("gp: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ. A must be
// square and symmetric positive definite; only the lower triangle of A is
// read. The result has zeros above the diagonal.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("gp: cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveLower solves L·x = b for lower-triangular L by forward substitution.
func SolveLower(l *Matrix, b []float64) []float64 {
	return SolveLowerInto(l, b, make([]float64, l.Rows))
}

// SolveLowerInto solves L·x = b into the caller-provided x (len ≥ L.Rows),
// returning x[:L.Rows]. b and x may alias the same slice. The allocation-free
// variant used by the acquisition scan workers.
func SolveLowerInto(l *Matrix, b, x []float64) []float64 {
	n := l.Rows
	x = x[:n]
	for i := 0; i < n; i++ {
		sum := b[i]
		row := l.Data[i*l.Cols : i*l.Cols+i]
		for k, lik := range row {
			sum -= lik * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// SolveUpperT solves Lᵀ·x = b for lower-triangular L (so Lᵀ is upper
// triangular) by backward substitution.
func SolveUpperT(l *Matrix, b []float64) []float64 {
	n := l.Rows
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// CholeskySolve solves A·x = b given the Cholesky factor L of A.
func CholeskySolve(l *Matrix, b []float64) []float64 {
	return SolveUpperT(l, SolveLower(l, b))
}

// LogDetFromCholesky returns log|A| = 2·Σ log L_ii given A's Cholesky factor.
func LogDetFromCholesky(l *Matrix) float64 {
	sum := 0.0
	for i := 0; i < l.Rows; i++ {
		sum += math.Log(l.At(i, i))
	}
	return 2 * sum
}

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// MulVec computes m·v.
func MulVec(m *Matrix, v []float64) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range v {
			s += row[j] * x
		}
		out[i] = s
	}
	return out
}
