// Package gp implements Gaussian-process regression from scratch: dense
// linear algebra (Cholesky factorization and triangular solves), stationary
// kernels (Matérn-5/2 and squared-exponential with ARD lengthscales),
// posterior inference, and marginal-likelihood hyperparameter fitting.
//
// This is the surrogate-model layer of BoFL's multi-objective Bayesian
// optimizer. The paper (§4.3) models the two objectives T(·) and E(·) as two
// independent GPs with zero prior mean and Matérn-5/2 kernels; package mobo
// builds the EHVI acquisition on top of the posteriors produced here.
package gp

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix. Cols doubles as the row stride, so a
// Matrix value with Rows < Cols is a valid leading-principal view into a
// larger allocation (the fantasy-chain workspace grows its factor in place
// this way).
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is not
// (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("gp: matrix is not positive definite")

// cholBlock is the panel width of the blocked factorization. 32 keeps the
// active panel (32·n floats) inside L1/L2 for the matrix sizes BoFL sees
// while amortizing loop overhead; correctness does not depend on the value.
const cholBlock = 32

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ. A must be
// square and symmetric positive definite; only the lower triangle of A is
// read. The result has zeros above the diagonal.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("gp: cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	l := a.Clone()
	if err := CholeskyInPlace(l); err != nil {
		return nil, err
	}
	return l, nil
}

// CholeskyInPlace overwrites the lower triangle of a with its Cholesky factor
// and zeroes the upper triangle. It is the blocked (panel-update) form of the
// factorization: each panel of cholBlock columns is factored left-looking,
// the rows below it are solved against the panel, and the trailing submatrix
// absorbs the panel's rank-cholBlock update before the next panel starts.
//
// Determinism: every element L_ij accumulates its subtractions
// a_ij − Σ_k l_ik·l_jk one product at a time in ascending k, split across
// panels in ascending panel order — exactly the floating-point operation
// sequence of the scalar triple loop (CholeskyScalar). The blocked factor is
// therefore bit-identical to the scalar reference; the property suite in
// linalg_test.go enforces equality, not closeness.
func CholeskyInPlace(a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("gp: cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	d := a.Data
	for p := 0; p < n; p += cholBlock {
		pe := p + cholBlock
		if pe > n {
			pe = n
		}
		// Factor the diagonal block A[p:pe, p:pe] column by column
		// (contributions of columns < p were already subtracted by earlier
		// trailing updates). Each element's value and its ascending-k
		// subtraction chain are exactly the scalar algorithm's — only the
		// order in which independent elements are produced changes, which
		// lets the rows below each pivot run as paired dependency chains.
		for j := p; j < pe; j++ {
			rowj := d[j*n : j*n+n]
			s := rowj[j]
			for k := p; k < j; k++ {
				s -= rowj[k] * rowj[k]
			}
			if s <= 0 || math.IsNaN(s) {
				return ErrNotPositiveDefinite
			}
			pivot := math.Sqrt(s)
			rowj[j] = pivot
			i := j + 1
			for ; i+1 < pe; i += 2 {
				rowa := d[i*n : i*n+n]
				rowb := d[(i+1)*n : (i+1)*n+n]
				sa := rowa[j]
				sb := rowb[j]
				for k := p; k < j; k++ {
					ljk := rowj[k]
					sa -= rowa[k] * ljk
					sb -= rowb[k] * ljk
				}
				rowa[j] = sa / pivot
				rowb[j] = sb / pivot
			}
			for ; i < pe; i++ {
				rowi := d[i*n : i*n+n]
				si := rowi[j]
				for k := p; k < j; k++ {
					si -= rowi[k] * rowj[k]
				}
				rowi[j] = si / pivot
			}
		}
		// Panel solve: rows below the block against the freshly factored
		// panel (forward substitution per row). Rows are independent of
		// each other, so four are solved at once — each element still
		// accumulates its own subtraction chain sequentially, the grouping
		// only gives the CPU independent dependency chains to overlap.
		i := pe
		for ; i+3 < n; i += 4 {
			rowa := d[i*n : i*n+n]
			rowb := d[(i+1)*n : (i+1)*n+n]
			rowc := d[(i+2)*n : (i+2)*n+n]
			rowe := d[(i+3)*n : (i+3)*n+n]
			for j := p; j < pe; j++ {
				rowj := d[j*n : j*n+n]
				sa := rowa[j]
				sb := rowb[j]
				sc := rowc[j]
				se := rowe[j]
				for k := p; k < j; k++ {
					ljk := rowj[k]
					sa -= rowa[k] * ljk
					sb -= rowb[k] * ljk
					sc -= rowc[k] * ljk
					se -= rowe[k] * ljk
				}
				pivot := rowj[j]
				rowa[j] = sa / pivot
				rowb[j] = sb / pivot
				rowc[j] = sc / pivot
				rowe[j] = se / pivot
			}
		}
		for ; i < n; i++ {
			rowi := d[i*n : i*n+n]
			for j := p; j < pe; j++ {
				rowj := d[j*n : j*n+n]
				s := rowi[j]
				for k := p; k < j; k++ {
					s -= rowi[k] * rowj[k]
				}
				rowi[j] = s / rowj[j]
			}
		}
		// Trailing update: subtract the panel's contribution from the
		// lower triangle of A[pe:, pe:], one product at a time in
		// ascending k so the accumulation order matches the scalar loop.
		// Four target elements run in parallel accumulator chains; each
		// chain is still strictly sequential in k, so every element's
		// value is bit-identical to the scalar loop's.
		for i := pe; i < n; i++ {
			rowi := d[i*n : i*n+n]
			j := pe
			for ; j+3 <= i; j += 4 {
				rowj0 := d[j*n : j*n+n]
				rowj1 := d[(j+1)*n : (j+1)*n+n]
				rowj2 := d[(j+2)*n : (j+2)*n+n]
				rowj3 := d[(j+3)*n : (j+3)*n+n]
				s0 := rowi[j]
				s1 := rowi[j+1]
				s2 := rowi[j+2]
				s3 := rowi[j+3]
				for k := p; k < pe; k++ {
					aik := rowi[k]
					s0 -= aik * rowj0[k]
					s1 -= aik * rowj1[k]
					s2 -= aik * rowj2[k]
					s3 -= aik * rowj3[k]
				}
				rowi[j] = s0
				rowi[j+1] = s1
				rowi[j+2] = s2
				rowi[j+3] = s3
			}
			for ; j <= i; j++ {
				rowj := d[j*n : j*n+n]
				s := rowi[j]
				for k := p; k < pe; k++ {
					s -= rowi[k] * rowj[k]
				}
				rowi[j] = s
			}
		}
	}
	// Zero the upper triangle (the input's upper values are never read by
	// the factorization, but Cholesky's contract is zeros above the
	// diagonal).
	for i := 0; i < n; i++ {
		row := d[i*n : i*n+n]
		for j := i + 1; j < n; j++ {
			row[j] = 0
		}
	}
	return nil
}

// CholeskyScalar is the historical scalar triple-loop factorization, kept as
// the reference implementation for the blocked kernel's property tests and
// benchmarks (BenchmarkCholeskyScalar vs BenchmarkCholeskyBlocked).
func CholeskyScalar(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("gp: cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// ExtendCholeskyRow computes the appended row [lᵀ, d] that extends a Cholesky
// factor by one observation: L·l = k (forward substitution) and
// d = √(kxx − lᵀl), with the same per-element accumulation order as a full
// refactorization of the bordered matrix — row n of the scalar loop runs the
// identical forward-substitution recurrence and the identical sequential
// diagonal subtraction, so the rank-1 append is bit-identical to refactoring
// from scratch (update_test.go pins exact equality). l must hold the current
// n×n factor (possibly as a view with stride Cols ≥ n), k the new point's
// covariance against the training set, and out a buffer of len ≥ n. The
// returned diagonal is clamped to √1e-12 for (numerically) duplicated points,
// mirroring the refit path's jitter.
func ExtendCholeskyRow(l *Matrix, k []float64, kxx float64, out []float64) (row []float64, diag float64) {
	row = SolveLowerInto(l, k, out)
	d2 := kxx
	for _, v := range row {
		d2 -= v * v
	}
	if d2 < 1e-12 {
		d2 = 1e-12
	}
	return row, math.Sqrt(d2)
}

// SolveLower solves L·x = b for lower-triangular L by forward substitution.
func SolveLower(l *Matrix, b []float64) []float64 {
	return SolveLowerInto(l, b, make([]float64, l.Rows))
}

// SolveLowerInto solves L·x = b into the caller-provided x (len ≥ L.Rows),
// returning x[:L.Rows]. b and x may alias the same slice. The allocation-free
// variant used by the acquisition scan workers.
func SolveLowerInto(l *Matrix, b, x []float64) []float64 {
	n := l.Rows
	x = x[:n]
	for i := 0; i < n; i++ {
		sum := b[i]
		row := l.Data[i*l.Cols : i*l.Cols+i]
		for k, lik := range row {
			sum -= lik * x[k]
		}
		x[i] = sum / l.Data[i*l.Cols+i]
	}
	return x
}

// SolveLowerNormInto is SolveLowerInto fused with the squared norm of the
// solution: ‖x‖² is accumulated as each component is produced, in the same
// ascending order Dot(x, x) uses, so the result is bit-identical to a
// separate solve followed by a dot product — at one pass over memory instead
// of two. This is the kernel behind the fused predict-variance path.
func SolveLowerNormInto(l *Matrix, b, x []float64) ([]float64, float64) {
	n := l.Rows
	x = x[:n]
	norm := 0.0
	for i := 0; i < n; i++ {
		sum := b[i]
		row := l.Data[i*l.Cols : i*l.Cols+i]
		for k, lik := range row {
			sum -= lik * x[k]
		}
		xi := sum / l.Data[i*l.Cols+i]
		x[i] = xi
		norm += xi * xi
	}
	return x, norm
}

// SolveUpperT solves Lᵀ·x = b for lower-triangular L (so Lᵀ is upper
// triangular) by backward substitution.
func SolveUpperT(l *Matrix, b []float64) []float64 {
	return SolveUpperTInto(l, b, make([]float64, l.Rows))
}

// SolveUpperTInto is SolveUpperT with a caller-provided x (len ≥ L.Rows),
// returning x[:L.Rows]. b and x may alias the same slice.
func SolveUpperTInto(l *Matrix, b, x []float64) []float64 {
	n := l.Rows
	stride := l.Cols
	x = x[:n]
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= l.Data[k*stride+i] * x[k]
		}
		x[i] = sum / l.Data[i*stride+i]
	}
	return x
}

// CholeskySolve solves A·x = b given the Cholesky factor L of A.
func CholeskySolve(l *Matrix, b []float64) []float64 {
	return SolveUpperT(l, SolveLower(l, b))
}

// CholeskySolveInto is CholeskySolve with caller-provided scratch and output
// buffers (each of len ≥ L.Rows). b, tmp and x may all alias.
func CholeskySolveInto(l *Matrix, b, tmp, x []float64) []float64 {
	return SolveUpperTInto(l, SolveLowerInto(l, b, tmp), x)
}

// LogDetFromCholesky returns log|A| = 2·Σ log L_ii given A's Cholesky factor.
func LogDetFromCholesky(l *Matrix) float64 {
	sum := 0.0
	for i := 0; i < l.Rows; i++ {
		sum += math.Log(l.Data[i*l.Cols+i])
	}
	return 2 * sum
}

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// MulVec computes m·v.
func MulVec(m *Matrix, v []float64) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range v {
			s += row[j] * x
		}
		out[i] = s
	}
	return out
}
