package gp

import (
	"math"
	"math/rand"
	"testing"
)

func mustMatern(t *testing.T, variance float64, ls []float64) *Matern52 {
	t.Helper()
	k, err := NewMatern52(variance, ls)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKernelValidation(t *testing.T) {
	if _, err := NewMatern52(-1, []float64{1}); err == nil {
		t.Error("negative variance accepted")
	}
	if _, err := NewMatern52(1, nil); err == nil {
		t.Error("empty lengthscales accepted")
	}
	if _, err := NewMatern52(1, []float64{0}); err == nil {
		t.Error("zero lengthscale accepted")
	}
	if _, err := NewRBF(-1, []float64{1}); err == nil {
		t.Error("rbf negative variance accepted")
	}
	if _, err := NewRBF(1, []float64{-2}); err == nil {
		t.Error("rbf negative lengthscale accepted")
	}
	if _, err := NewRBF(1, nil); err == nil {
		t.Error("rbf empty lengthscales accepted")
	}
}

func TestKernelProperties(t *testing.T) {
	kernels := []Kernel{
		mustMatern(t, 2.0, []float64{0.5, 1.5}),
		func() Kernel {
			k, err := NewRBF(2.0, []float64{0.5, 1.5})
			if err != nil {
				t.Fatal(err)
			}
			return k
		}(),
	}
	rng := rand.New(rand.NewSource(5))
	for _, k := range kernels {
		if k.Dim() != 2 {
			t.Errorf("Dim = %d, want 2", k.Dim())
		}
		for trial := 0; trial < 100; trial++ {
			x := []float64{rng.NormFloat64(), rng.NormFloat64()}
			y := []float64{rng.NormFloat64(), rng.NormFloat64()}
			kxy, kyx := k.Eval(x, y), k.Eval(y, x)
			if math.Abs(kxy-kyx) > 1e-12 {
				t.Fatalf("kernel not symmetric: %v vs %v", kxy, kyx)
			}
			kxx := k.Eval(x, x)
			if math.Abs(kxx-2.0) > 1e-12 {
				t.Fatalf("k(x,x) = %v, want variance 2", kxx)
			}
			if kxy > kxx+1e-12 {
				t.Fatalf("|k(x,y)| exceeds k(x,x): %v > %v", kxy, kxx)
			}
			if kxy < 0 {
				t.Fatalf("stationary kernel went negative: %v", kxy)
			}
		}
	}
}

func TestFitValidation(t *testing.T) {
	k := mustMatern(t, 1, []float64{1})
	if _, err := Fit(k, 0.1, nil, nil); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := Fit(k, 0.1, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Fit(k, 0.1, [][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := Fit(k, -0.1, [][]float64{{1}}, []float64{1}); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestPosteriorInterpolatesWithTinyNoise(t *testing.T) {
	k := mustMatern(t, 1, []float64{0.4})
	xs := [][]float64{{0.1}, {0.4}, {0.7}, {0.95}}
	ys := []float64{3.0, 1.0, 2.5, 4.0}
	r, err := Fit(k, 1e-6, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		mu, sigma := r.Predict(x)
		if math.Abs(mu-ys[i]) > 1e-3 {
			t.Errorf("posterior mean at training point %v = %v, want %v", x, mu, ys[i])
		}
		if sigma > 1e-2 {
			t.Errorf("posterior std at training point %v = %v, want ≈0", x, sigma)
		}
	}
}

func TestPosteriorRevertsToPriorFarAway(t *testing.T) {
	k := mustMatern(t, 1, []float64{0.1})
	xs := [][]float64{{0.0}}
	ys := []float64{5.0}
	r, err := Fit(k, 1e-4, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Far from data the standardized posterior reverts to the prior:
	// mean → standardization mean (5.0 since there is one point), std →
	// prior std in raw units.
	mu, sigma := r.Predict([]float64{100})
	if math.Abs(mu-5.0) > 1e-6 {
		t.Errorf("far-field mean = %v, want 5", mu)
	}
	if sigma <= 0 {
		t.Errorf("far-field std = %v, want > 0", sigma)
	}
}

func TestPosteriorVarianceShrinksNearData(t *testing.T) {
	k := mustMatern(t, 1, []float64{0.3})
	xs := [][]float64{{0.5}}
	r, err := Fit(k, 0.01, xs, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	_, near := r.Predict([]float64{0.51})
	_, far := r.Predict([]float64{0.99})
	if near >= far {
		t.Errorf("variance near data (%v) should be below far (%v)", near, far)
	}
}

func TestFitHandlesDuplicateInputs(t *testing.T) {
	k := mustMatern(t, 1, []float64{0.3})
	xs := [][]float64{{0.5}, {0.5}, {0.5}}
	ys := []float64{1, 1.1, 0.9}
	r, err := Fit(k, 1e-8, xs, ys)
	if err != nil {
		t.Fatalf("duplicate inputs should be handled by jitter: %v", err)
	}
	mu, _ := r.Predict([]float64{0.5})
	if math.Abs(mu-1.0) > 0.2 {
		t.Errorf("posterior at duplicated point = %v, want ≈1.0", mu)
	}
}

func TestFitHandlesConstantTargets(t *testing.T) {
	k := mustMatern(t, 1, []float64{0.3})
	xs := [][]float64{{0.1}, {0.5}, {0.9}}
	ys := []float64{2, 2, 2}
	r, err := Fit(k, 0.01, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := r.Predict([]float64{0.5})
	if math.Abs(mu-2) > 1e-6 {
		t.Errorf("constant-target posterior = %v, want 2", mu)
	}
}

func TestLogMarginalLikelihoodPrefersTrueLengthscale(t *testing.T) {
	// Data generated from a smooth function: a reasonable lengthscale must
	// beat a wildly small one.
	rng := rand.New(rand.NewSource(11))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 25; i++ {
		x := rng.Float64()
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(3*x)+0.01*rng.NormFloat64())
	}
	good, err := Fit(mustMatern(t, 1, []float64{0.5}), 0.05, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Fit(mustMatern(t, 1, []float64{0.001}), 0.05, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if good.LogMarginalLikelihood() <= bad.LogMarginalLikelihood() {
		t.Errorf("LML(ℓ=0.5)=%v should exceed LML(ℓ=0.001)=%v",
			good.LogMarginalLikelihood(), bad.LogMarginalLikelihood())
	}
}

func TestConditionAddsObservation(t *testing.T) {
	k := mustMatern(t, 1, []float64{0.3})
	r, err := Fit(k, 1e-6, [][]float64{{0.2}}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := r.Condition([]float64{0.8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r2.N() != 2 {
		t.Fatalf("N = %d, want 2", r2.N())
	}
	mu, _ := r2.Predict([]float64{0.8})
	if math.Abs(mu-3) > 1e-2 {
		t.Errorf("conditioned posterior at new point = %v, want 3", mu)
	}
	// Original must be untouched.
	if r.N() != 1 {
		t.Error("Condition mutated the receiver")
	}
}

func TestFitHyperRecoversSmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var xs [][]float64
	var ys []float64
	f := func(x, y float64) float64 { return math.Sin(4*x) + y*y }
	for i := 0; i < 30; i++ {
		x, y := rng.Float64(), rng.Float64()
		xs = append(xs, []float64{x, y})
		ys = append(ys, f(x, y)+0.01*rng.NormFloat64())
	}
	r, err := FitHyper(xs, ys, HyperOptions{Dim: 2, Seed: 1, Restarts: 4, Iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Held-out accuracy.
	var sumErr float64
	for i := 0; i < 50; i++ {
		x, y := rng.Float64(), rng.Float64()
		mu, _ := r.Predict([]float64{x, y})
		sumErr += math.Abs(mu - f(x, y))
	}
	if avg := sumErr / 50; avg > 0.15 {
		t.Errorf("held-out mean absolute error %v too high", avg)
	}
}

func TestFitHyperValidation(t *testing.T) {
	if _, err := FitHyper(nil, nil, HyperOptions{Dim: 1}); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := FitHyper([][]float64{{1}}, []float64{1}, HyperOptions{}); err == nil {
		t.Error("zero Dim accepted")
	}
}

func TestFitHyperDeterministicBySeed(t *testing.T) {
	xs := [][]float64{{0.1}, {0.3}, {0.6}, {0.9}}
	ys := []float64{1, 2, 1.5, 3}
	a, err := FitHyper(xs, ys, HyperOptions{Dim: 1, Seed: 7, Restarts: 3, Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitHyper(xs, ys, HyperOptions{Dim: 1, Seed: 7, Restarts: 3, Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	muA, sA := a.Predict([]float64{0.5})
	muB, sB := b.Predict([]float64{0.5})
	if muA != muB || sA != sB {
		t.Errorf("same seed produced different models: (%v,%v) vs (%v,%v)", muA, sA, muB, sB)
	}
}

func TestFitHyperRBFAblation(t *testing.T) {
	xs := [][]float64{{0.1}, {0.4}, {0.8}}
	ys := []float64{1, 0.5, 2}
	r, err := FitHyper(xs, ys, HyperOptions{Dim: 1, Seed: 3, Restarts: 2, Iters: 5, UseRBF: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 3 {
		t.Errorf("N = %d, want 3", r.N())
	}
}
