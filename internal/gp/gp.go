package gp

import (
	"errors"
	"fmt"
	"math"
)

// Regressor is a fitted Gaussian-process regression model with zero prior
// mean (observations are standardized internally, matching the paper's
// m(x)=0 prior). It is immutable after construction.
type Regressor struct {
	kernel Kernel
	noise  float64 // observation noise std-dev (in standardized units)

	xs   [][]float64
	mean float64 // standardization offset of raw targets
	std  float64 // standardization scale of raw targets

	chol  *Matrix   // Cholesky factor of K + σₙ²I (possibly a strided view)
	alpha []float64 // (K + σₙ²I)⁻¹ · y (standardized)
	ys    []float64 // standardized targets
}

// ErrNoData is returned when fitting with zero observations.
var ErrNoData = errors.New("gp: no training observations")

// Fit conditions a zero-mean GP with the given kernel and noise standard
// deviation on observations (xs, ys). Targets are standardized internally so
// the zero-mean prior is reasonable regardless of the objective's scale.
func Fit(kernel Kernel, noise float64, xs [][]float64, ys []float64) (*Regressor, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("gp: %d inputs but %d targets", len(xs), len(ys))
	}
	dim := kernel.Dim()
	for i, x := range xs {
		if len(x) != dim {
			return nil, fmt.Errorf("gp: input %d has dim %d, kernel expects %d", i, len(x), dim)
		}
	}
	if noise < 0 {
		return nil, fmt.Errorf("gp: negative noise %v", noise)
	}

	mean, std := standardizeParams(ys)
	sy := make([]float64, len(ys))
	for i, y := range ys {
		sy[i] = (y - mean) / std
	}

	// The retained input copies share one flat backing array: two
	// allocations instead of n+1, and the Gram sweep walks contiguous
	// memory.
	n := len(xs)
	backing := make([]float64, n*dim)
	cxs := make([][]float64, n)
	for i, x := range xs {
		row := backing[i*dim : (i+1)*dim : (i+1)*dim]
		copy(row, x)
		cxs[i] = row
	}

	// The Gram matrix is factored in place — no separate factor copy. If it
	// is numerically singular (e.g. duplicated inputs with tiny noise), the
	// failed attempt has clobbered the buffer, so rebuild it and retry with
	// progressively larger diagonal jitter; the retry path is rare enough
	// that the extra Gram sweeps don't matter.
	chol := NewMatrix(n, n)
	gramLowerInto(kernel, cxs, noise, chol)
	err := CholeskyInPlace(chol)
	jitter, cumJitter := 1e-10, 0.0
	for attempt := 0; err != nil && attempt < 7; attempt++ {
		cumJitter += jitter
		jitter *= 10
		gramLowerInto(kernel, cxs, noise, chol)
		for i := 0; i < n; i++ {
			chol.Set(i, i, chol.At(i, i)+cumJitter)
		}
		err = CholeskyInPlace(chol)
	}
	if err != nil {
		return nil, fmt.Errorf("gp: gram matrix factorization: %w", err)
	}

	alpha := make([]float64, n)
	CholeskySolveInto(chol, sy, alpha, alpha)

	return &Regressor{
		kernel: kernel,
		noise:  noise,
		xs:     cxs,
		mean:   mean,
		std:    std,
		chol:   chol,
		alpha:  alpha,
		ys:     sy,
	}, nil
}

func standardizeParams(ys []float64) (mean, std float64) {
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	for _, y := range ys {
		d := y - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(ys)))
	if std < 1e-12 {
		std = 1 // constant targets: keep scale neutral
	}
	return mean, std
}

// N returns the number of training observations.
func (r *Regressor) N() int { return len(r.xs) }

// Predict returns the posterior mean and standard deviation of the latent
// function at x, in the original (unstandardized) units of the targets.
func (r *Regressor) Predict(x []float64) (mu, sigma float64) {
	n := len(r.xs)
	scratch := make([]float64, 2*n)
	return r.PredictInto(x, scratch[:n], scratch[n:])
}

// PredictInto is Predict with caller-provided scratch buffers (each of
// len ≥ N()), for hot loops that evaluate many points without per-point
// garbage (PredictBatch, and ad-hoc scans that bypass KStarCache). kstar
// and v are overwritten and must not alias each other.
//
// The kernel sweep, the mean dot product and the variance solve are fused:
// k*·α accumulates while k* is filled and ‖v‖² accumulates while the
// triangular solve runs, in the same ascending order the separate passes
// used — two passes over memory instead of four, bit-identical results.
func (r *Regressor) PredictInto(x []float64, kstar, v []float64) (mu, sigma float64) {
	n := len(r.xs)
	kstar = kstar[:n]
	muStd := kernelRowMu(r.kernel, x, r.xs, kstar, r.alpha)
	_, normVV := SolveLowerNormInto(r.chol, kstar, v)
	varStd := priorVariance(r.kernel, x) - normVV
	if varStd < 0 {
		varStd = 0
	}
	return muStd*r.std + r.mean, math.Sqrt(varStd) * r.std
}

// PredictBatch evaluates Predict on each row of xs, reusing one scratch
// allocation across the whole batch.
func (r *Regressor) PredictBatch(xs [][]float64) (mus, sigmas []float64) {
	mus = make([]float64, len(xs))
	sigmas = make([]float64, len(xs))
	r.PredictBatchInto(xs, mus, sigmas, make([]float64, 2*len(r.xs)))
	return mus, sigmas
}

// PredictBatchInto is PredictBatch into caller-provided output slices (each
// of len ≥ len(xs)) and scratch (len ≥ 2·N()): the fused, allocation-free
// batch predict used in steady state. The allocation-regression suite pins
// it at zero allocs per batch.
func (r *Regressor) PredictBatchInto(xs [][]float64, mus, sigmas, scratch []float64) {
	n := len(r.xs)
	kstar, v := scratch[:n], scratch[n:2*n]
	for i, x := range xs {
		mus[i], sigmas[i] = r.PredictInto(x, kstar, v)
	}
}

// LogMarginalLikelihood returns the log marginal likelihood of the
// standardized training targets under the fitted prior:
//
//	log p(y|X) = −½ yᵀα − Σ log L_ii − n/2·log 2π
func (r *Regressor) LogMarginalLikelihood() float64 {
	n := float64(len(r.ys))
	return -0.5*Dot(r.ys, r.alpha) - 0.5*LogDetFromCholesky(r.chol) - 0.5*n*math.Log(2*math.Pi)
}

// Condition returns a new regressor with one extra observation appended. It
// refits from scratch, which is O(n³) but n stays small (tens of points) in
// BoFL's exploration phases. Used by the Kriging-believer batch strategy to
// fantasize observations.
func (r *Regressor) Condition(x []float64, y float64) (*Regressor, error) {
	xs := make([][]float64, 0, len(r.xs)+1)
	ys := make([]float64, 0, len(r.xs)+1)
	for i, xi := range r.xs {
		xs = append(xs, xi)
		ys = append(ys, r.ys[i]*r.std+r.mean)
	}
	xs = append(xs, x)
	ys = append(ys, y)
	return Fit(r.kernel, r.noise, xs, ys)
}
