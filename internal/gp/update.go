package gp

import (
	"fmt"
	"math"
)

// ConditionFast returns a regressor conditioned on one extra observation in
// O(n²) by extending the Cholesky factor with one row, instead of the O(n³)
// refit that Condition performs. The original target standardization is kept
// (the new point is standardized with the existing mean/std), which is the
// right trade-off for Kriging-believer fantasies: they are transient
// hypotheses discarded after a batch is selected, so re-standardizing for
// them is wasted work.
func (r *Regressor) ConditionFast(x []float64, y float64) (*Regressor, error) {
	if len(x) != r.kernel.Dim() {
		return nil, fmt.Errorf("gp: point has dim %d, kernel expects %d", len(x), r.kernel.Dim())
	}
	n := len(r.xs)

	// Covariance of the new point against the training set and itself.
	kvec := make([]float64, n)
	for i, xi := range r.xs {
		kvec[i] = r.kernel.Eval(x, xi)
	}
	kxx := r.kernel.Eval(x, x) + r.noise*r.noise

	// Extend L: the new row is [lᵀ, d] with L·l = k and d² = kxx − lᵀl.
	l := SolveLower(r.chol, kvec)
	d2 := kxx - Dot(l, l)
	if d2 < 1e-12 {
		d2 = 1e-12 // duplicate point: clamp like the refit path's jitter
	}
	d := math.Sqrt(d2)

	chol := NewMatrix(n+1, n+1)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			chol.Set(i, j, r.chol.At(i, j))
		}
	}
	for j := 0; j < n; j++ {
		chol.Set(n, j, l[j])
	}
	chol.Set(n, n, d)

	// Extended dataset in standardized units.
	xs := make([][]float64, n+1)
	copy(xs, r.xs)
	cx := make([]float64, len(x))
	copy(cx, x)
	xs[n] = cx
	ys := make([]float64, n+1)
	copy(ys, r.ys)
	ys[n] = (y - r.mean) / r.std

	return &Regressor{
		kernel: r.kernel,
		noise:  r.noise,
		xs:     xs,
		mean:   r.mean,
		std:    r.std,
		chol:   chol,
		alpha:  CholeskySolve(chol, ys),
		ys:     ys,
	}, nil
}
