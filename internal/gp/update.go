package gp

import (
	"fmt"
)

// ConditionFast returns a regressor conditioned on one extra observation in
// O(n²) by extending the Cholesky factor with one row, instead of the O(n³)
// refit that Condition performs. The original target standardization is kept
// (the new point is standardized with the existing mean/std), which is the
// right trade-off for Kriging-believer fantasies: they are transient
// hypotheses discarded after a batch is selected, so re-standardizing for
// them is wasted work.
//
// The appended row is computed by ExtendCholeskyRow, whose accumulation
// order matches a full refactorization of the bordered Gram matrix exactly —
// the rank-1 update is bit-identical to refitting, not merely close
// (update_test.go pins equality).
func (r *Regressor) ConditionFast(x []float64, y float64) (*Regressor, error) {
	if len(x) != r.kernel.Dim() {
		return nil, fmt.Errorf("gp: point has dim %d, kernel expects %d", len(x), r.kernel.Dim())
	}
	n := len(r.xs)

	// Covariance of the new point against the training set and itself,
	// via the same devirtualized sweep the Gram build uses so the appended
	// row matches what a full refactorization would see bit-for-bit.
	kvec := make([]float64, n)
	kernelRow(r.kernel, x, r.xs, kvec)
	kxx := priorVariance(r.kernel, x) + r.noise*r.noise

	chol := NewMatrix(n+1, n+1)
	for i := 0; i < n; i++ {
		copy(chol.Data[i*(n+1):i*(n+1)+i+1], r.chol.Data[i*r.chol.Cols:i*r.chol.Cols+i+1])
	}
	row, d := ExtendCholeskyRow(r.chol, kvec, kxx, chol.Data[n*(n+1):n*(n+1)+n])
	_ = row // written in place into chol's last row
	chol.Set(n, n, d)

	// Extended dataset in standardized units.
	xs := make([][]float64, n+1)
	copy(xs, r.xs)
	cx := make([]float64, len(x))
	copy(cx, x)
	xs[n] = cx
	ys := make([]float64, n+1)
	copy(ys, r.ys)
	ys[n] = (y - r.mean) / r.std

	return &Regressor{
		kernel: r.kernel,
		noise:  r.noise,
		xs:     xs,
		mean:   r.mean,
		std:    r.std,
		chol:   chol,
		alpha:  CholeskySolve(chol, ys),
		ys:     ys,
	}, nil
}
