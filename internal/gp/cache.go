package gp

import (
	"fmt"
	"math"

	"bofl/internal/parallel"
)

// KStarCache precomputes, for a fixed candidate set, everything a posterior
// query needs against a regressor's training set: the cross-covariance
// vector k*, the forward-substitution solve v = L⁻¹k*, its squared norm and
// the prior variance k(x,x). Building it costs one full scan's worth of
// work (O(C·n·d) kernel evaluations plus O(C·n²) triangular solves);
// afterwards each posterior query is one O(n) dot product.
//
// Rows are stored in two flat slabs (one for k*, one for v) with a common
// row stride ≥ n: a cache built with spare stride is extendable in place by
// a CacheChain, which carries it through a Kriging-believer fantasy in O(n)
// per candidate — one kernel evaluation, one dot product against the new
// factor row and a rank-one update of ‖v‖² — with zero copying.
// mobo.SuggestBatch builds one cache per surrogate per Fit and runs one
// chain per batch selection.
//
// Determinism: the cached quantities are computed by exactly the code path
// Predict uses, so a base cache reproduces Regressor.Predict bit-for-bit.
// Extended caches accumulate ‖v‖² incrementally, which regroups the
// floating-point sum; the result agrees with a fresh ConditionFast
// regressor's Predict to machine precision (the gp equivalence test pins
// 1e-9) and is identical between serial and parallel runs, which is the
// contract the determinism suite enforces.
type KStarCache struct {
	r          *Regressor
	candidates [][]float64
	n          int       // valid row prefix (training-set size)
	stride     int       // row stride of kstars/vs (≥ n)
	kstars     []float64 // kstars[i*stride : i*stride+n] is k(candidates[i], ·)
	vs         []float64 // vs[i*stride : i*stride+n] = L⁻¹·k*
	dotvv      []float64 // dotvv[i] = ‖vs[i]‖²
	kxx        []float64 // kxx[i] = k(candidates[i], candidates[i])
}

// NewKStarCache builds the cross-covariance cache for the given candidates
// against r's training set. The candidate slice is retained and must not be
// mutated. The kernel sweep and triangular solves fan out across the shared
// worker pool.
func (r *Regressor) NewKStarCache(candidates [][]float64) *KStarCache {
	return r.newKStarCache(candidates, len(r.xs))
}

func (r *Regressor) newKStarCache(candidates [][]float64, stride int) *KStarCache {
	n := len(r.xs)
	c := &KStarCache{
		r:          r,
		candidates: candidates,
		n:          n,
		stride:     stride,
		kstars:     make([]float64, len(candidates)*stride),
		vs:         make([]float64, len(candidates)*stride),
		dotvv:      make([]float64, len(candidates)),
		kxx:        make([]float64, len(candidates)),
	}
	parallel.ForChunk(len(candidates), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x := candidates[i]
			ks := c.kstars[i*stride : i*stride+n]
			kernelRow(r.kernel, x, r.xs, ks)
			v := SolveLowerInto(r.chol, ks, c.vs[i*stride:i*stride+n])
			c.dotvv[i] = Dot(v, v)
			c.kxx[i] = priorVariance(r.kernel, x)
		}
	})
	return c
}

// N returns the training-set size the cached vectors cover.
func (c *KStarCache) N() int { return c.n }

// Len returns the number of cached candidates.
func (c *KStarCache) Len() int { return len(c.candidates) }

// Predict returns the posterior mean and standard deviation at candidate i
// using the cached solves: one O(n) dot product, no allocation. Safe for
// concurrent use.
func (c *KStarCache) Predict(i int) (mu, sigma float64) {
	r := c.r
	muStd := Dot(c.kstars[i*c.stride:i*c.stride+c.n], r.alpha)
	varStd := c.kxx[i] - c.dotvv[i]
	if varStd < 0 {
		varStd = 0
	}
	return muStd*r.std + r.mean, math.Sqrt(varStd) * r.std
}

// Extend returns a new cache valid for cond, which must be the regressor
// produced by c's regressor via ConditionFast(x, y) (or a Fantasy chain).
// The extended Cholesky factor shares its first n rows with the original, so
// each candidate's solve grows by a single forward-substitution step:
//
//	v'ₙ = (k(candidate, x) − l·v) / d
//
// where [lᵀ, d] is the factor's new row. The receiver stays valid for the
// original regressor. CacheChain performs the same step in place with zero
// copying; Extend is the persistent (copying) form.
func (c *KStarCache) Extend(cond *Regressor, x []float64) (*KStarCache, error) {
	if len(cond.xs) != c.n+1 {
		return nil, fmt.Errorf("gp: extend expects a one-point conditioning, got %d → %d training points", c.n, len(cond.xs))
	}
	n := c.n
	out := &KStarCache{
		r:          cond,
		candidates: c.candidates,
		n:          n + 1,
		stride:     n + 1,
		kstars:     make([]float64, len(c.candidates)*(n+1)),
		vs:         make([]float64, len(c.candidates)*(n+1)),
		dotvv:      make([]float64, len(c.candidates)),
		kxx:        c.kxx, // prior variances don't depend on the training set
	}
	lrow := cond.chol.Data[n*cond.chol.Cols : n*cond.chol.Cols+n]
	d := cond.chol.At(n, n)
	parallel.ForChunk(len(c.candidates), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ks := out.kstars[i*(n+1) : (i+1)*(n+1)]
			copy(ks, c.kstars[i*c.stride:i*c.stride+n])
			ks[n] = kernel1(cond.kernel, c.candidates[i], x)
			v := out.vs[i*(n+1) : (i+1)*(n+1)]
			vOld := c.vs[i*c.stride : i*c.stride+n]
			copy(v, vOld)
			v[n] = (ks[n] - Dot(lrow, vOld)) / d
			out.dotvv[i] = c.dotvv[i] + v[n]*v[n]
		}
	})
	return out, nil
}

// CacheChain extends a KStarCache through a Kriging-believer fantasy chain
// in place: one slab copy up front, then each Extend appends a single column
// to every candidate's cached solve and updates ‖v‖² incrementally — zero
// copying and zero allocation per step. Only the most recently returned
// cache view is valid. The base cache is never mutated.
//
// The per-candidate arithmetic is identical to KStarCache.Extend's, so a
// chain of k extensions produces bit-identical cached values to k nested
// Extend calls.
type CacheChain struct {
	base *KStarCache
	cur  *KStarCache
}

// NewChain prepares an in-place extension chain with capacity for extra
// appended observations. The cached rows are copied into pooled slabs once.
func (c *KStarCache) NewChain(extra int) *CacheChain {
	stride := c.n + extra
	cc := &CacheChain{base: c}
	cur := &KStarCache{
		r:          c.r,
		candidates: c.candidates,
		n:          c.n,
		stride:     stride,
		kstars:     getF64(len(c.candidates) * stride),
		vs:         getF64(len(c.candidates) * stride),
		dotvv:      getF64(len(c.candidates)),
		kxx:        c.kxx,
	}
	parallel.ForChunk(len(c.candidates), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(cur.kstars[i*stride:i*stride+c.n], c.kstars[i*c.stride:i*c.stride+c.n])
			copy(cur.vs[i*stride:i*stride+c.n], c.vs[i*c.stride:i*c.stride+c.n])
		}
		copy(cur.dotvv[lo:hi], c.dotvv[lo:hi])
	})
	cc.cur = cur
	return cc
}

// Cur returns the chain's current cache view.
func (cc *CacheChain) Cur() *KStarCache { return cc.cur }

// Extend advances the chain to cond (the current regressor conditioned on
// one observation at x) and returns the updated cache view, invalidating the
// previous one.
func (cc *CacheChain) Extend(cond *Regressor, x []float64) (*KStarCache, error) {
	cur := cc.cur
	n := cur.n
	if len(cond.xs) != n+1 {
		return nil, fmt.Errorf("gp: extend expects a one-point conditioning, got %d → %d training points", n, len(cond.xs))
	}
	if n >= cur.stride {
		return nil, fmt.Errorf("gp: cache chain capacity %d exhausted", cur.stride)
	}
	stride := cur.stride
	lrow := cond.chol.Data[n*cond.chol.Cols : n*cond.chol.Cols+n]
	d := cond.chol.At(n, n)
	parallel.ForChunk(len(cur.candidates), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ks := cur.kstars[i*stride : i*stride+n+1]
			ks[n] = kernel1(cond.kernel, cur.candidates[i], x)
			v := cur.vs[i*stride : i*stride+n+1]
			v[n] = (ks[n] - Dot(lrow, v[:n])) / d
			cur.dotvv[i] += v[n] * v[n]
		}
	})
	next := &KStarCache{
		r:          cond,
		candidates: cur.candidates,
		n:          n + 1,
		stride:     stride,
		kstars:     cur.kstars,
		vs:         cur.vs,
		dotvv:      cur.dotvv,
		kxx:        cur.kxx,
	}
	cc.cur = next
	return next, nil
}

// Release returns the chain's slabs to the package pool. The chain and every
// cache view it returned become invalid; the base cache is unaffected.
func (cc *CacheChain) Release() {
	putF64(cc.cur.kstars)
	putF64(cc.cur.vs)
	putF64(cc.cur.dotvv)
	cc.cur, cc.base = nil, nil
}
