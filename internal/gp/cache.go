package gp

import (
	"fmt"
	"math"

	"bofl/internal/parallel"
)

// KStarCache precomputes, for a fixed candidate set, everything a posterior
// query needs against a regressor's training set: the cross-covariance
// vector k*, the forward-substitution solve v = L⁻¹k*, its squared norm and
// the prior variance k(x,x). Building it costs one full scan's worth of
// work (O(C·n·d) kernel evaluations plus O(C·n²) triangular solves);
// afterwards each posterior query is one O(n) dot product.
//
// Because a Kriging-believer ConditionFast update extends the Cholesky
// factor without touching its first n rows, Extend carries the cache
// through a fantasy in O(n) per candidate — one kernel evaluation, one dot
// product against the new factor row and a rank-one update of ‖v‖² —
// instead of re-solving the O(n²) triangular system. mobo.SuggestBatch
// builds one cache per surrogate per Fit and extends it per fantasy.
//
// Determinism: the cached quantities are computed by exactly the code path
// Predict uses, so a base cache reproduces Regressor.Predict bit-for-bit.
// Extended caches accumulate ‖v‖² incrementally, which regroups the
// floating-point sum; the result agrees with a fresh ConditionFast
// regressor's Predict to machine precision (the gp equivalence test pins
// 1e-9) and is identical between serial and parallel runs, which is the
// contract the determinism suite enforces.
type KStarCache struct {
	r          *Regressor
	candidates [][]float64
	kstars     [][]float64 // kstars[i] is k(candidates[i], ·) vs r's training set
	vs         [][]float64 // vs[i] = L⁻¹·kstars[i]
	dotvv      []float64   // dotvv[i] = ‖vs[i]‖²
	kxx        []float64   // kxx[i] = k(candidates[i], candidates[i])
}

// NewKStarCache builds the cross-covariance cache for the given candidates
// against r's training set. The candidate slice is retained and must not be
// mutated. The kernel sweep and triangular solves fan out across the shared
// worker pool.
func (r *Regressor) NewKStarCache(candidates [][]float64) *KStarCache {
	n := len(r.xs)
	c := &KStarCache{
		r:          r,
		candidates: candidates,
		kstars:     make([][]float64, len(candidates)),
		vs:         make([][]float64, len(candidates)),
		dotvv:      make([]float64, len(candidates)),
		kxx:        make([]float64, len(candidates)),
	}
	parallel.ForChunk(len(candidates), func(lo, hi int) {
		// One backing array per chunk and per field: the rows are
		// read-only after construction, so sharing them is safe and cuts
		// allocator traffic.
		kbuf := make([]float64, (hi-lo)*n)
		vbuf := make([]float64, (hi-lo)*n)
		for i := lo; i < hi; i++ {
			x := candidates[i]
			ks := kbuf[(i-lo)*n : (i-lo+1)*n]
			for j, xj := range r.xs {
				ks[j] = r.kernel.Eval(x, xj)
			}
			v := SolveLowerInto(r.chol, ks, vbuf[(i-lo)*n:(i-lo+1)*n])
			c.kstars[i] = ks
			c.vs[i] = v
			c.dotvv[i] = Dot(v, v)
			c.kxx[i] = r.kernel.Eval(x, x)
		}
	})
	return c
}

// N returns the training-set size the cached vectors cover.
func (c *KStarCache) N() int { return len(c.r.xs) }

// Len returns the number of cached candidates.
func (c *KStarCache) Len() int { return len(c.candidates) }

// Predict returns the posterior mean and standard deviation at candidate i
// using the cached solves: one O(n) dot product, no allocation. Safe for
// concurrent use.
func (c *KStarCache) Predict(i int) (mu, sigma float64) {
	r := c.r
	muStd := Dot(c.kstars[i], r.alpha)
	varStd := c.kxx[i] - c.dotvv[i]
	if varStd < 0 {
		varStd = 0
	}
	return muStd*r.std + r.mean, math.Sqrt(varStd) * r.std
}

// Extend returns a cache valid for cond, which must be the regressor
// produced by c's regressor via ConditionFast(x, y). The extended Cholesky
// factor shares its first n rows with the original, so each candidate's
// solve grows by a single forward-substitution step:
//
//	v'ₙ = (k(candidate, x) − l·v) / d
//
// where [lᵀ, d] is the factor's new row. The receiver stays valid for the
// original regressor (fantasies are transient; the base cache is reused
// across SuggestBatch calls).
func (c *KStarCache) Extend(cond *Regressor, x []float64) (*KStarCache, error) {
	n := len(c.r.xs)
	if len(cond.xs) != n+1 {
		return nil, fmt.Errorf("gp: extend expects a one-point conditioning, got %d → %d training points", n, len(cond.xs))
	}
	lrow := cond.chol.Data[n*cond.chol.Cols : n*cond.chol.Cols+n]
	d := cond.chol.At(n, n)
	out := &KStarCache{
		r:          cond,
		candidates: c.candidates,
		kstars:     make([][]float64, len(c.candidates)),
		vs:         make([][]float64, len(c.candidates)),
		dotvv:      make([]float64, len(c.candidates)),
		kxx:        c.kxx, // prior variances don't depend on the training set
	}
	parallel.ForChunk(len(c.candidates), func(lo, hi int) {
		kbuf := make([]float64, (hi-lo)*(n+1))
		vbuf := make([]float64, (hi-lo)*(n+1))
		for i := lo; i < hi; i++ {
			ks := kbuf[(i-lo)*(n+1) : (i-lo+1)*(n+1)]
			copy(ks, c.kstars[i])
			ks[n] = cond.kernel.Eval(c.candidates[i], x)
			v := vbuf[(i-lo)*(n+1) : (i-lo+1)*(n+1)]
			copy(v, c.vs[i])
			v[n] = (ks[n] - Dot(lrow, c.vs[i])) / d
			out.kstars[i] = ks
			out.vs[i] = v
			out.dotvv[i] = c.dotvv[i] + v[n]*v[n]
		}
	})
	return out, nil
}
