package gp

import (
	"math"
	"math/rand"
	"testing"
)

func trainedRegressor(t *testing.T, n, d int, seed int64) (*Regressor, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Float64()
		}
		xs[i] = x
		ys[i] = math.Sin(3*x[0]) + 0.5*x[d-1] + 0.05*rng.NormFloat64()
	}
	ls := make([]float64, d)
	for i := range ls {
		ls[i] = 0.4
	}
	k, err := NewMatern52(1.2, ls)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Fit(k, 0.05, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	return r, rng
}

func randomCandidates(rng *rand.Rand, c, d int) [][]float64 {
	out := make([][]float64, c)
	for i := range out {
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Float64()
		}
		out[i] = x
	}
	return out
}

func TestKStarCacheMatchesPredict(t *testing.T) {
	r, rng := trainedRegressor(t, 25, 3, 1)
	cands := randomCandidates(rng, 200, 3)
	cache := r.NewKStarCache(cands)
	for i, x := range cands {
		wantMu, wantSig := r.Predict(x)
		gotMu, gotSig := cache.Predict(i)
		if gotMu != wantMu || gotSig != wantSig {
			t.Fatalf("candidate %d: cached (%v, %v) != fresh (%v, %v)", i, gotMu, gotSig, wantMu, wantSig)
		}
	}
}

// TestKStarCacheExtendMatchesConditionFast is the satellite equivalence test:
// after a chain of Kriging-believer fantasies, predictions through the
// extended cache must match fresh ConditionFast regressor predictions to
// 1e-9 (they are in fact bit-identical by construction).
func TestKStarCacheExtendMatchesConditionFast(t *testing.T) {
	r, rng := trainedRegressor(t, 20, 3, 2)
	cands := randomCandidates(rng, 150, 3)
	cache := r.NewKStarCache(cands)

	cur := r
	for step := 0; step < 5; step++ {
		// Fantasize an observation at one of the candidates, as the
		// Kriging-believer batch rule does.
		fx := cands[17+step*11]
		fy, _ := cur.Predict(fx)
		cond, err := cur.ConditionFast(fx, fy)
		if err != nil {
			t.Fatal(err)
		}
		ext, err := cache.Extend(cond, fx)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range cands {
			wantMu, wantSig := cond.Predict(x)
			gotMu, gotSig := ext.Predict(i)
			if math.Abs(gotMu-wantMu) > 1e-9 || math.Abs(gotSig-wantSig) > 1e-9 {
				t.Fatalf("step %d candidate %d: cached (%v, %v) vs fresh (%v, %v)", step, i, gotMu, gotSig, wantMu, wantSig)
			}
		}
		cur, cache = cond, ext
	}
}

func TestKStarCacheExtendRejectsWrongRegressor(t *testing.T) {
	r, rng := trainedRegressor(t, 15, 2, 3)
	cands := randomCandidates(rng, 10, 2)
	cache := r.NewKStarCache(cands)
	if _, err := cache.Extend(r, cands[0]); err == nil {
		t.Fatal("Extend accepted a regressor with an unchanged training set")
	}
}

func TestPredictIntoMatchesPredict(t *testing.T) {
	r, rng := trainedRegressor(t, 30, 3, 4)
	scratch := make([]float64, 2*r.N())
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		wantMu, wantSig := r.Predict(x)
		gotMu, gotSig := r.PredictInto(x, scratch[:r.N()], scratch[r.N():])
		if gotMu != wantMu || gotSig != wantSig {
			t.Fatalf("PredictInto (%v, %v) != Predict (%v, %v)", gotMu, gotSig, wantMu, wantSig)
		}
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	r, rng := trainedRegressor(t, 30, 3, 5)
	xs := randomCandidates(rng, 40, 3)
	mus, sigs := r.PredictBatch(xs)
	for i, x := range xs {
		mu, sig := r.Predict(x)
		if mus[i] != mu || sigs[i] != sig {
			t.Fatalf("batch[%d] (%v, %v) != scalar (%v, %v)", i, mus[i], sigs[i], mu, sig)
		}
	}
}
