package gp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD builds a random symmetric positive definite matrix A = BᵀB + εI.
func randomSPD(n int, rng *rand.Rand) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b.At(k, i) * b.At(k, j)
			}
			a.Set(i, j, s)
		}
		a.Set(i, i, a.At(i, i)+0.5)
	}
	return a
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		a := randomSPD(n, rng)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += l.At(i, k) * l.At(j, k)
				}
				if math.Abs(s-a.At(i, j)) > 1e-8 {
					t.Fatalf("trial %d: (L·Lᵀ)[%d,%d] = %v, want %v", trial, i, j, s, a.At(i, j))
				}
			}
		}
		// Upper triangle must be zero.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("L[%d,%d] = %v, want 0", i, j, l.At(i, j))
				}
			}
		}
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 1) // eigenvalues 3 and -1
	if _, err := Cholesky(a); err == nil {
		t.Error("expected error for indefinite matrix")
	}
	b := NewMatrix(2, 3)
	if _, err := Cholesky(b); err == nil {
		t.Error("expected error for non-square matrix")
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		a := randomSPD(n, rng)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := MulVec(a, x)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		got := CholeskySolve(l, b)
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], x[i])
			}
		}
	}
}

func TestSolveLowerAndUpperT(t *testing.T) {
	l := NewMatrix(2, 2)
	l.Set(0, 0, 2)
	l.Set(1, 0, 1)
	l.Set(1, 1, 3)
	// L·x = [2, 7] → x = [1, 2]
	x := SolveLower(l, []float64{2, 7})
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("SolveLower = %v, want [1 2]", x)
	}
	// Lᵀ·x = [4, 3] → x[1] = 1, x[0] = (4-1)/2 = 1.5
	y := SolveUpperT(l, []float64{4, 3})
	if math.Abs(y[0]-1.5) > 1e-12 || math.Abs(y[1]-1) > 1e-12 {
		t.Errorf("SolveUpperT = %v, want [1.5 1]", y)
	}
}

func TestLogDetFromCholesky(t *testing.T) {
	// diag(4, 9) has det 36.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(1, 1, 9)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := LogDetFromCholesky(l); math.Abs(got-math.Log(36)) > 1e-12 {
		t.Errorf("logdet = %v, want %v", got, math.Log(36))
	}
}

func TestDotAndMulVec(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	got := MulVec(m, []float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MulVec = %v, want [6 15]", got)
	}
}

func TestMatrixCloneIsDeep(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares backing storage")
	}
}

func TestGramMatrixIsPSD(t *testing.T) {
	// Property: the Gram matrix of any kernel on any point set must be
	// factorizable after noise regularization.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		xs := make([][]float64, n)
		for i := range xs {
			xs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		k, err := NewMatern52(1.0, []float64{0.3, 0.5, 0.7})
		if err != nil {
			return false
		}
		gram := GramMatrix(k, xs, 0.01)
		_, err = Cholesky(gram)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCholeskyBlockedMatchesScalarBitwise is the property suite behind the
// blocked factorization: across sizes below, straddling and well above the
// panel width, CholeskyInPlace must reproduce the scalar triple loop
// (CholeskyScalar) bit for bit — the blocking changes the schedule, never
// any element's subtraction chain.
func TestCholeskyBlockedMatchesScalarBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	sizes := []int{1, 2, 3, 7, 15, 31, 32, 33, 47, 63, 64, 65, 70, 96}
	for _, n := range sizes {
		for trial := 0; trial < 3; trial++ {
			a := randomSPD(n, rng)
			blocked := a.Clone()
			if err := CholeskyInPlace(blocked); err != nil {
				t.Fatalf("n=%d trial=%d: blocked: %v", n, trial, err)
			}
			scalar, err := CholeskyScalar(a.Clone())
			if err != nil {
				t.Fatalf("n=%d trial=%d: scalar: %v", n, trial, err)
			}
			for i := 0; i < n; i++ {
				for j := 0; j <= i; j++ {
					if math.Float64bits(blocked.At(i, j)) != math.Float64bits(scalar.At(i, j)) {
						t.Fatalf("n=%d trial=%d: L[%d,%d] = %v (blocked) vs %v (scalar)",
							n, trial, i, j, blocked.At(i, j), scalar.At(i, j))
					}
				}
				for j := i + 1; j < n; j++ {
					if blocked.At(i, j) != 0 {
						t.Fatalf("n=%d: upper triangle not zeroed at [%d,%d]: %v", n, i, j, blocked.At(i, j))
					}
				}
			}
		}
	}
}

// TestExtendCholeskyRowMatchesScalarFactorization grows a factor one row at
// a time inside a wide-stride slab (the fantasy chain's storage layout) and
// checks every intermediate leading-principal factor bitwise against a fresh
// scalar factorization of the corresponding submatrix: the incremental
// update is a reordering of nothing — identical chains, identical bits.
func TestExtendCholeskyRowMatchesScalarFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	const n, stride = 24, 31
	a := randomSPD(n, rng)

	slab := make([]float64, n*stride)
	slab[0] = math.Sqrt(a.At(0, 0))
	kvec := make([]float64, n)
	for m := 1; m < n; m++ {
		view := &Matrix{Rows: m, Cols: stride, Data: slab}
		for j := 0; j < m; j++ {
			kvec[j] = a.At(m, j)
		}
		row := slab[m*stride : m*stride+m]
		copy(row, kvec[:m])
		_, d := ExtendCholeskyRow(view, row, a.At(m, m), row)
		slab[m*stride+m] = d

		full, err := CholeskyScalar(&Matrix{Rows: m + 1, Cols: m + 1, Data: submatrix(a, m+1)})
		if err != nil {
			t.Fatalf("m=%d: scalar factorization: %v", m, err)
		}
		for i := 0; i <= m; i++ {
			for j := 0; j <= i; j++ {
				got := slab[i*stride+j]
				want := full.At(i, j)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("m=%d: L[%d,%d] = %v (incremental) vs %v (full refactorization)", m, i, j, got, want)
				}
			}
		}
	}
}

// submatrix copies the k×k leading principal block of a into a dense slice.
func submatrix(a *Matrix, k int) []float64 {
	out := make([]float64, k*k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			out[i*k+j] = a.At(i, j)
		}
	}
	return out
}

// TestStrideAwareSolvesMatchSquare embeds a factor in a wider-stride slab
// (leading-principal view, Cols > Rows) and checks every solve routine and
// the log-determinant against the square-layout results bitwise.
func TestStrideAwareSolvesMatchSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	const n, stride = 20, 33
	a := randomSPD(n, rng)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	slab := make([]float64, n*stride)
	for i := 0; i < n; i++ {
		copy(slab[i*stride:i*stride+i+1], l.Data[i*l.Cols:i*l.Cols+i+1])
	}
	view := &Matrix{Rows: n, Cols: stride, Data: slab}

	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}

	wantLower := SolveLower(l, b)
	gotLower := SolveLower(view, b)
	wantUpper := SolveUpperT(l, wantLower)
	gotUpper := SolveUpperT(view, gotLower)
	wantFull := CholeskySolve(l, b)
	gotFull := CholeskySolve(view, b)
	_, wantNorm := SolveLowerNormInto(l, b, make([]float64, n))
	_, gotNorm := SolveLowerNormInto(view, b, make([]float64, n))

	for i := 0; i < n; i++ {
		if wantLower[i] != gotLower[i] || wantUpper[i] != gotUpper[i] || wantFull[i] != gotFull[i] {
			t.Fatalf("solve mismatch at %d: lower %v/%v upper %v/%v full %v/%v",
				i, wantLower[i], gotLower[i], wantUpper[i], gotUpper[i], wantFull[i], gotFull[i])
		}
	}
	if wantNorm != gotNorm {
		t.Fatalf("fused norm differs: %v vs %v", wantNorm, gotNorm)
	}
	if LogDetFromCholesky(l) != LogDetFromCholesky(view) {
		t.Fatalf("log-determinant differs between square and view layout")
	}
}
