package mobo

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"bofl/internal/gp"
	"bofl/internal/obs"
	"bofl/internal/pareto"
)

// ParEGO is an alternative multi-objective strategy used as an ablation
// against the EHVI optimizer: each suggestion draws a random weight vector on
// the simplex, scalarizes the (normalized) objectives with the augmented
// Tchebycheff function, fits a single GP on the scalarized values and picks
// the unobserved candidate with maximal expected improvement. It trades the
// EHVI's global front focus for cheaper single-objective machinery.
type ParEGO struct {
	candidates [][]float64
	dim        int
	opts       Options
	rng        *rand.Rand

	observed map[int]bool
	obs      []Observation

	sink obs.Sink
}

// SetSink installs a telemetry sink recording per-scalarization GP fits and
// the suggestion scan. Nil restores the no-op sink.
func (p *ParEGO) SetSink(s obs.Sink) { p.sink = obs.OrNop(s) }

// NewParEGO constructs the scalarizing optimizer over a fixed candidate set.
func NewParEGO(candidates [][]float64, opts Options) (*ParEGO, error) {
	if len(candidates) == 0 {
		return nil, errors.New("mobo: empty candidate set")
	}
	dim := len(candidates[0])
	if dim == 0 {
		return nil, errors.New("mobo: zero-dimensional candidates")
	}
	for i, c := range candidates {
		if len(c) != dim {
			return nil, fmt.Errorf("mobo: candidate %d has dim %d, want %d", i, len(c), dim)
		}
	}
	return &ParEGO{
		candidates: candidates,
		dim:        dim,
		opts:       opts,
		rng:        rand.New(rand.NewSource(opts.Seed)),
		observed:   make(map[int]bool),
		sink:       obs.Nop,
	}, nil
}

// Observe records evaluated configurations.
func (p *ParEGO) Observe(obs ...Observation) error {
	for _, ob := range obs {
		if ob.Index < 0 || ob.Index >= len(p.candidates) {
			return fmt.Errorf("mobo: observation index %d out of range", ob.Index)
		}
		x := ob.X
		if x == nil {
			x = p.candidates[ob.Index]
		}
		p.obs = append(p.obs, Observation{X: x, Index: ob.Index, Energy: ob.Energy, Latency: ob.Latency})
		p.observed[ob.Index] = true
	}
	return nil
}

// NumObserved returns the number of distinct observed candidates.
func (p *ParEGO) NumObserved() int { return len(p.observed) }

// Front returns the Pareto front of the observations.
func (p *ParEGO) Front() []pareto.Point {
	pts := make([]pareto.Point, len(p.obs))
	for i, ob := range p.obs {
		pts[i] = pareto.Point{X: ob.Energy, Y: ob.Latency}
	}
	return pareto.Front(pts)
}

// scalarize computes the augmented Tchebycheff value of normalized objectives
// (f1, f2) under weights (w, 1−w): max(w·f1, (1−w)·f2) + ρ·(w·f1 + (1−w)·f2).
func scalarize(f1, f2, w float64) float64 {
	const rho = 0.05
	a, b := w*f1, (1-w)*f2
	return math.Max(a, b) + rho*(a+b)
}

// SuggestBatch proposes up to k unobserved candidates, each chosen with a
// fresh random scalarization.
func (p *ParEGO) SuggestBatch(k int) ([]Suggestion, error) {
	if k <= 0 {
		return nil, nil
	}
	if len(p.obs) == 0 {
		return nil, ErrNoObservations
	}
	defer p.sink.Span(obs.SpanEHVIScan)()

	// Normalize the objectives to [0,1] over the observed ranges.
	minE, maxE := math.Inf(1), math.Inf(-1)
	minT, maxT := math.Inf(1), math.Inf(-1)
	for _, ob := range p.obs {
		minE, maxE = math.Min(minE, ob.Energy), math.Max(maxE, ob.Energy)
		minT, maxT = math.Min(minT, ob.Latency), math.Max(maxT, ob.Latency)
	}
	spanE, spanT := maxE-minE, maxT-minT
	if spanE <= 0 {
		spanE = 1
	}
	if spanT <= 0 {
		spanT = 1
	}

	taken := make(map[int]bool, k)
	out := make([]Suggestion, 0, k)
	for pick := 0; pick < k; pick++ {
		w := p.rng.Float64()
		xs := make([][]float64, len(p.obs))
		ys := make([]float64, len(p.obs))
		best := math.Inf(1)
		for i, ob := range p.obs {
			xs[i] = ob.X
			ys[i] = scalarize((ob.Energy-minE)/spanE, (ob.Latency-minT)/spanT, w)
			if ys[i] < best {
				best = ys[i]
			}
		}
		endFit := p.sink.Span(obs.SpanGPFit)
		model, err := gp.FitHyper(xs, ys, gp.HyperOptions{
			Dim:      p.dim,
			Restarts: max1(p.opts.Restarts, 1),
			Iters:    max1(p.opts.Iters, 3),
			Seed:     p.opts.Seed + int64(pick),
			UseRBF:   p.opts.UseRBF,
		})
		endFit()
		if err != nil {
			return nil, fmt.Errorf("mobo: parego surrogate: %w", err)
		}
		bestIdx, bestEI := -1, 0.0
		for i := range p.candidates {
			if p.observed[i] || taken[i] {
				continue
			}
			mu, sigma := model.Predict(p.candidates[i])
			ei := psi(best, mu, sigma) // E[(best − Z)+], minimization EI
			if bestIdx == -1 || ei > bestEI {
				bestIdx, bestEI = i, ei
			}
		}
		if bestIdx == -1 {
			break
		}
		taken[bestIdx] = true
		out = append(out, Suggestion{Index: bestIdx, X: p.candidates[bestIdx], EHVI: bestEI})
		if pick == 0 {
			p.sink.SetGauge(obs.MetricAcqBest, bestEI)
		}
	}
	return out, nil
}

func max1(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}
