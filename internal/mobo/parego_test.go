package mobo

import (
	"math"
	"testing"

	"bofl/internal/pareto"
)

func TestNewParEGOValidation(t *testing.T) {
	if _, err := NewParEGO(nil, Options{}); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, err := NewParEGO([][]float64{{}}, Options{}); err == nil {
		t.Error("zero-dim candidates accepted")
	}
	if _, err := NewParEGO([][]float64{{1}, {1, 2}}, Options{}); err == nil {
		t.Error("ragged candidates accepted")
	}
}

func TestParEGOObserveValidation(t *testing.T) {
	p, err := NewParEGO([][]float64{{0}, {1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Observe(Observation{Index: 7}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := p.SuggestBatch(1); err == nil {
		t.Error("suggest before observe accepted")
	}
}

func TestScalarize(t *testing.T) {
	// Equal weights, equal objectives: max + rho·sum.
	got := scalarize(1, 1, 0.5)
	want := 0.5 + 0.05*1.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("scalarize = %v, want %v", got, want)
	}
	// w=1 ignores the second objective's max term.
	if scalarize(0.2, 100, 1) > 0.2+0.05*0.2+1e-12 {
		t.Error("w=1 should zero out the second objective")
	}
}

func TestParEGOFindsGoodFront(t *testing.T) {
	cands := gridCandidates(15, 15)
	p, err := NewParEGO(cands, Options{Seed: 3, Restarts: 2, Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := HaltonIndices(10, []int{15, 15})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range seeds {
		e, l := synthObjectives(cands[i])
		if err := p.Observe(Observation{Index: i, Energy: e, Latency: l}); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 5; round++ {
		sugg, err := p.SuggestBatch(5)
		if err != nil {
			t.Fatal(err)
		}
		if len(sugg) == 0 {
			t.Fatal("no suggestions")
		}
		for _, s := range sugg {
			if p.observed[s.Index] {
				t.Fatalf("suggested already-observed %d", s.Index)
			}
			e, l := synthObjectives(cands[s.Index])
			if err := p.Observe(Observation{Index: s.Index, Energy: e, Latency: l}); err != nil {
				t.Fatal(err)
			}
		}
	}
	all := make([]pareto.Point, len(cands))
	for i, c := range cands {
		e, l := synthObjectives(c)
		all[i] = pareto.Point{X: e, Y: l}
	}
	ref, err := pareto.ReferenceFrom(all)
	if err != nil {
		t.Fatal(err)
	}
	trueHV := pareto.Hypervolume(all, ref)
	gotHV := pareto.Hypervolume(p.Front(), ref)
	if frac := gotHV / trueHV; frac < 0.85 {
		t.Errorf("ParEGO front covers %.1f%% of true hypervolume, want ≥85%%", frac*100)
	}
}

func TestParEGOBatchDistinct(t *testing.T) {
	cands := gridCandidates(6, 6)
	p, err := NewParEGO(cands, Options{Seed: 4, Restarts: 1, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 7, 14, 21, 28, 35} {
		e, l := synthObjectives(cands[i])
		if err := p.Observe(Observation{Index: i, Energy: e, Latency: l}); err != nil {
			t.Fatal(err)
		}
	}
	sugg, err := p.SuggestBatch(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, s := range sugg {
		if seen[s.Index] {
			t.Fatalf("duplicate suggestion %d", s.Index)
		}
		seen[s.Index] = true
	}
	if sugg2, err := p.SuggestBatch(0); err != nil || sugg2 != nil {
		t.Errorf("SuggestBatch(0) = %v, %v", sugg2, err)
	}
}

func TestParEGOConstantObjectives(t *testing.T) {
	// Degenerate spans must not divide by zero.
	cands := gridCandidates(4, 4)
	p, err := NewParEGO(cands, Options{Seed: 5, Restarts: 1, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 5, 10} {
		if err := p.Observe(Observation{Index: i, Energy: 1, Latency: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.SuggestBatch(2); err != nil {
		t.Fatalf("constant objectives broke ParEGO: %v", err)
	}
}
