package mobo

import (
	"math"
	"testing"

	"bofl/internal/pareto"
)

// synthObjectives is a smooth synthetic two-objective test problem on a 2-D
// grid with a clear trade-off: energy falls as x rises, latency rises.
func synthObjectives(x []float64) (energy, latency float64) {
	energy = 2.0 - x[0] + 0.3*math.Sin(5*x[1]) + 0.5*x[1]*x[1]
	latency = 0.5 + x[0]*x[0] + 0.2*math.Cos(3*x[1])
	return math.Max(energy, 0.05), math.Max(latency, 0.05)
}

func gridCandidates(nx, ny int) [][]float64 {
	out := make([][]float64, 0, nx*ny)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			out = append(out, []float64{float64(i) / float64(nx-1), float64(j) / float64(ny-1)})
		}
	}
	return out
}

func seedOptimizer(t *testing.T, cands [][]float64, seedIdx []int) *Optimizer {
	t.Helper()
	opt, err := NewOptimizer(cands, Options{Seed: 1, Restarts: 2, Iters: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range seedIdx {
		e, l := synthObjectives(cands[i])
		if err := opt.Observe(Observation{Index: i, Energy: e, Latency: l}); err != nil {
			t.Fatal(err)
		}
	}
	return opt
}

func TestNewOptimizerValidation(t *testing.T) {
	if _, err := NewOptimizer(nil, Options{}); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, err := NewOptimizer([][]float64{{}}, Options{}); err == nil {
		t.Error("zero-dim candidates accepted")
	}
	if _, err := NewOptimizer([][]float64{{1}, {1, 2}}, Options{}); err == nil {
		t.Error("ragged candidates accepted")
	}
}

func TestObserveValidation(t *testing.T) {
	opt, err := NewOptimizer([][]float64{{0}, {1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Observe(Observation{Index: 5, Energy: 1, Latency: 1}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := opt.Observe(Observation{Index: 0, X: []float64{1, 2}, Energy: 1, Latency: 1}); err == nil {
		t.Error("wrong-dim explicit point accepted")
	}
}

func TestSuggestBeforeObserveFails(t *testing.T) {
	opt, err := NewOptimizer([][]float64{{0}, {1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.SuggestBatch(1); err == nil {
		t.Error("SuggestBatch before Observe should fail")
	}
	if err := opt.Fit(); err == nil {
		t.Error("Fit before Observe should fail")
	}
}

func TestSuggestBatchBasics(t *testing.T) {
	cands := gridCandidates(10, 10)
	seeds, err := HaltonIndices(8, []int{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	opt := seedOptimizer(t, cands, seeds)

	sugg, err := opt.SuggestBatch(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) == 0 {
		t.Fatal("no suggestions")
	}
	seen := make(map[int]bool)
	for _, s := range sugg {
		if s.Index < 0 || s.Index >= len(cands) {
			t.Fatalf("suggestion index %d out of range", s.Index)
		}
		if seen[s.Index] {
			t.Fatalf("duplicate suggestion %d", s.Index)
		}
		seen[s.Index] = true
		if opt.observed[s.Index] {
			t.Fatalf("suggested already-observed index %d", s.Index)
		}
		if s.EHVI < 0 {
			t.Fatalf("negative EHVI %v", s.EHVI)
		}
	}
}

func TestSuggestBatchZeroAndExhaustion(t *testing.T) {
	cands := gridCandidates(2, 2)
	opt := seedOptimizer(t, cands, []int{0, 1, 2})
	sugg, err := opt.SuggestBatch(0)
	if err != nil || sugg != nil {
		t.Errorf("SuggestBatch(0) = %v, %v; want nil, nil", sugg, err)
	}
	sugg, err = opt.SuggestBatch(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) != 1 {
		t.Errorf("only 1 unobserved candidate, got %d suggestions", len(sugg))
	}
}

func TestOptimizerFindsNearOptimalFront(t *testing.T) {
	// End-to-end: a handful of BO iterations must dominate most of the
	// true front's hypervolume while exploring a fraction of the space.
	cands := gridCandidates(20, 20)
	seeds, err := HaltonIndices(10, []int{20, 20})
	if err != nil {
		t.Fatal(err)
	}
	opt := seedOptimizer(t, cands, seeds)

	for round := 0; round < 5; round++ {
		sugg, err := opt.SuggestBatch(6)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sugg {
			e, l := synthObjectives(cands[s.Index])
			if err := opt.Observe(Observation{Index: s.Index, Energy: e, Latency: l}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Ground truth over the full grid.
	all := make([]pareto.Point, len(cands))
	for i, c := range cands {
		e, l := synthObjectives(c)
		all[i] = pareto.Point{X: e, Y: l}
	}
	ref, err := pareto.ReferenceFrom(all)
	if err != nil {
		t.Fatal(err)
	}
	trueHV := pareto.Hypervolume(all, ref)
	gotHV := pareto.Hypervolume(opt.Front(), ref)
	if frac := gotHV / trueHV; frac < 0.95 {
		t.Errorf("BO front covers %.1f%% of true hypervolume, want ≥95%%", frac*100)
	}
	if explored := opt.NumObserved(); explored > len(cands)/4 {
		t.Errorf("explored %d of %d candidates — too many", explored, len(cands))
	}
}

func TestObservationsReturnsCopy(t *testing.T) {
	opt := seedOptimizer(t, gridCandidates(3, 3), []int{0, 4})
	obs := opt.Observations()
	if len(obs) != 2 {
		t.Fatalf("got %d observations", len(obs))
	}
	obs[0].Energy = -1
	if opt.Observations()[0].Energy == -1 {
		t.Error("Observations exposes internal state")
	}
}

func TestHypervolumeAndReference(t *testing.T) {
	opt := seedOptimizer(t, gridCandidates(5, 5), []int{0, 6, 12, 18, 24})
	ref, err := opt.Reference()
	if err != nil {
		t.Fatal(err)
	}
	for _, ob := range opt.Observations() {
		if ob.Energy > ref.X+1e-12 || ob.Latency > ref.Y+1e-12 {
			t.Errorf("reference %v does not bound observation %+v", ref, ob)
		}
	}
	hv, err := opt.Hypervolume()
	if err != nil {
		t.Fatal(err)
	}
	if hv < 0 {
		t.Errorf("negative hypervolume %v", hv)
	}
}

func TestPosteriorAt(t *testing.T) {
	opt := seedOptimizer(t, gridCandidates(5, 5), []int{0, 6, 12, 18, 24})
	g, err := opt.PosteriorAt(12)
	if err != nil {
		t.Fatal(err)
	}
	e, l := synthObjectives(gridCandidates(5, 5)[12])
	if math.Abs(g.MuX-e)/e > 0.5 {
		t.Errorf("posterior energy mean %v far from observed %v", g.MuX, e)
	}
	if math.Abs(g.MuY-l)/l > 0.5 {
		t.Errorf("posterior latency mean %v far from observed %v", g.MuY, l)
	}
	if _, err := opt.PosteriorAt(-1); err == nil {
		t.Error("negative index accepted")
	}
}
