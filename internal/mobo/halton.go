// Package mobo implements multi-objective Bayesian optimization for the
// two-objective (energy, latency) minimization problem at the heart of BoFL:
// Halton quasi-random initial designs, the exact analytic 2-D expected
// hypervolume improvement (EHVI) acquisition function with a Gauss–Hermite
// quadrature cross-check, sequential-greedy (Kriging-believer) batch
// selection, and an Optimizer driver that ties them to Gaussian-process
// surrogates from package gp.
package mobo

import "fmt"

// primes used as Halton bases for up to 8 dimensions.
var haltonBases = []int{2, 3, 5, 7, 11, 13, 17, 19}

// HaltonPoint returns the i-th point (i ≥ 0) of the dim-dimensional Halton
// sequence in the unit cube. Halton sequences are quasi-random: they fill the
// cube far more uniformly than pseudo-random samples, which is why BoFL uses
// one for its safe random exploration starting points (§4.2).
func HaltonPoint(i, dim int) ([]float64, error) {
	if dim <= 0 || dim > len(haltonBases) {
		return nil, fmt.Errorf("mobo: halton dimension %d out of range [1, %d]", dim, len(haltonBases))
	}
	if i < 0 {
		return nil, fmt.Errorf("mobo: halton index %d must be non-negative", i)
	}
	p := make([]float64, dim)
	for d := 0; d < dim; d++ {
		p[d] = radicalInverse(i+1, haltonBases[d]) // skip the origin at i=0
	}
	return p, nil
}

// radicalInverse computes the radical inverse of n in the given base.
func radicalInverse(n, base int) float64 {
	inv := 0.0
	f := 1.0 / float64(base)
	for n > 0 {
		inv += f * float64(n%base)
		n /= base
		f /= float64(base)
	}
	return inv
}

// HaltonIndices draws count distinct indices from a discrete grid with the
// given per-dimension sizes by snapping Halton points to grid cells. The
// result is a slice of flat indices (row-major over dims) with no duplicates,
// uniformly spread over the grid. If count exceeds the number of distinct
// cells reachable, fewer indices are returned.
func HaltonIndices(count int, dims []int) ([]int, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("mobo: empty grid dimensions")
	}
	total := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("mobo: grid dimension %d must be positive", d)
		}
		total *= d
	}
	if count > total {
		count = total
	}
	seen := make(map[int]bool, count)
	out := make([]int, 0, count)
	for i := 0; len(out) < count && i < 100*total+1000; i++ {
		p, err := HaltonPoint(i, len(dims))
		if err != nil {
			return nil, err
		}
		flat := 0
		for d, size := range dims {
			cell := int(p[d] * float64(size))
			if cell >= size {
				cell = size - 1
			}
			flat = flat*size + cell
		}
		if !seen[flat] {
			seen[flat] = true
			out = append(out, flat)
		}
	}
	return out, nil
}
