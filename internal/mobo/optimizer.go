package mobo

import (
	"errors"
	"fmt"
	"math"

	"bofl/internal/gp"
	"bofl/internal/obs"
	"bofl/internal/parallel"
	"bofl/internal/pareto"
)

// Observation is one evaluated configuration: a normalized input point plus
// the two measured objectives (both minimized).
type Observation struct {
	// X is the candidate's normalized coordinates in [0,1]^d.
	X []float64
	// Index is the candidate's index in the optimizer's candidate set.
	Index int
	// Energy is the first objective (energy per minibatch, Joule).
	Energy float64
	// Latency is the second objective (latency per minibatch, seconds).
	Latency float64
}

// Options configures an Optimizer.
type Options struct {
	// Seed drives GP hyperparameter restarts. Deterministic per seed.
	Seed int64
	// Restarts / Iters are passed through to gp.FitHyper; zero values use
	// that package's defaults (kept small here because the MBO runs
	// between FL rounds and must finish in bounded time).
	Restarts int
	Iters    int
	// UseRBF switches the surrogate kernel (ablation).
	UseRBF bool
	// Float32Prescreen enables the float32 fast path for the EHVI candidate
	// scan: candidates are scored with cheap float32 approximations first
	// and only the top slice is re-scored with exact float64 arithmetic, so
	// the selected candidates are bit-identical to the pure-float64 scan
	// (see ehvi32.go for the soundness argument).
	Float32Prescreen bool
}

// Optimizer is a multi-objective Bayesian optimizer over a fixed, finite
// candidate set. It maintains observations, fits one GP surrogate per
// objective and suggests new candidates by maximizing EHVI, batching with the
// sequential-greedy Kriging-believer rule (§4.3 of the paper).
type Optimizer struct {
	candidates [][]float64
	dim        int
	opts       Options

	observed map[int]bool
	obs      []Observation

	modelE *gp.Regressor
	modelT *gp.Regressor

	// Per-candidate cross-covariance caches against the fitted surrogates,
	// built lazily on the first SuggestBatch after a Fit and reused across
	// calls (Kriging-believer fantasies extend transient copies).
	cacheE *gp.KStarCache
	cacheT *gp.KStarCache

	sink obs.Sink
}

// SetSink installs a telemetry sink recording GP fit and EHVI scan spans plus
// the chosen candidate's acquisition value. Nil restores the no-op sink.
func (o *Optimizer) SetSink(s obs.Sink) { o.sink = obs.OrNop(s) }

// ErrNoObservations indicates that Fit or SuggestBatch was called before any
// observation was recorded.
var ErrNoObservations = errors.New("mobo: no observations recorded")

// NewOptimizer constructs an optimizer over the given candidate set. Each
// candidate must be a d-dimensional point, conventionally normalized to
// [0,1]^d. The slice is retained by the optimizer and must not be mutated.
func NewOptimizer(candidates [][]float64, opts Options) (*Optimizer, error) {
	if len(candidates) == 0 {
		return nil, errors.New("mobo: empty candidate set")
	}
	dim := len(candidates[0])
	if dim == 0 {
		return nil, errors.New("mobo: zero-dimensional candidates")
	}
	for i, c := range candidates {
		if len(c) != dim {
			return nil, fmt.Errorf("mobo: candidate %d has dim %d, want %d", i, len(c), dim)
		}
	}
	return &Optimizer{
		candidates: candidates,
		dim:        dim,
		opts:       opts,
		observed:   make(map[int]bool),
		sink:       obs.Nop,
	}, nil
}

// Observe records evaluated configurations. Re-observing an index updates the
// dataset with the additional measurement (the GP's noise model averages
// repeated observations naturally). Invalidates any fitted surrogates.
func (o *Optimizer) Observe(obs ...Observation) error {
	for _, ob := range obs {
		if ob.Index < 0 || ob.Index >= len(o.candidates) {
			return fmt.Errorf("mobo: observation index %d out of range [0,%d)", ob.Index, len(o.candidates))
		}
		x := ob.X
		if x == nil {
			x = o.candidates[ob.Index]
		}
		if len(x) != o.dim {
			return fmt.Errorf("mobo: observation point has dim %d, want %d", len(x), o.dim)
		}
		o.obs = append(o.obs, Observation{X: x, Index: ob.Index, Energy: ob.Energy, Latency: ob.Latency})
		o.observed[ob.Index] = true
	}
	o.modelE, o.modelT = nil, nil
	o.cacheE, o.cacheT = nil, nil
	return nil
}

// Observations returns a copy of all recorded observations.
func (o *Optimizer) Observations() []Observation {
	out := make([]Observation, len(o.obs))
	copy(out, o.obs)
	return out
}

// NumObserved returns the number of distinct candidate indices observed.
func (o *Optimizer) NumObserved() int { return len(o.observed) }

// Front returns the Pareto front of the observed (energy, latency) points.
func (o *Optimizer) Front() []pareto.Point {
	pts := make([]pareto.Point, len(o.obs))
	for i, ob := range o.obs {
		pts[i] = pareto.Point{X: ob.Energy, Y: ob.Latency}
	}
	return pareto.Front(pts)
}

// Reference returns the paper's hypervolume reference point: the
// component-wise worst observed performance.
func (o *Optimizer) Reference() (pareto.Point, error) {
	pts := make([]pareto.Point, len(o.obs))
	for i, ob := range o.obs {
		pts[i] = pareto.Point{X: ob.Energy, Y: ob.Latency}
	}
	return pareto.ReferenceFrom(pts)
}

// Hypervolume returns the hypervolume of the current observed front with
// respect to the current reference point.
func (o *Optimizer) Hypervolume() (float64, error) {
	ref, err := o.Reference()
	if err != nil {
		return 0, err
	}
	return pareto.Hypervolume(o.Front(), ref), nil
}

// Fit (re)fits the two GP surrogates on the recorded observations. It is
// called implicitly by SuggestBatch when models are stale; exposed so
// callers can schedule the expensive part explicitly (BoFL runs it in the
// configuration/reporting window between training rounds).
func (o *Optimizer) Fit() error {
	if len(o.obs) == 0 {
		return ErrNoObservations
	}
	defer o.sink.Span(obs.SpanGPFit)()
	xs := make([][]float64, len(o.obs))
	es := make([]float64, len(o.obs))
	ts := make([]float64, len(o.obs))
	for i, ob := range o.obs {
		xs[i] = ob.X
		// Model log-objectives: both energy and latency are positive
		// with multiplicative structure; logs stabilize the GP fit.
		es[i] = math.Log(math.Max(ob.Energy, 1e-12))
		ts[i] = math.Log(math.Max(ob.Latency, 1e-12))
	}
	hyper := gp.HyperOptions{
		Dim:      o.dim,
		Restarts: o.opts.Restarts,
		Iters:    o.opts.Iters,
		Seed:     o.opts.Seed,
		UseRBF:   o.opts.UseRBF,
	}
	hyperT := hyper
	hyperT.Seed = o.opts.Seed + 1
	// The two surrogates are independent; fit them side by side on the
	// worker pool (each fit additionally fans out its own restarts).
	var modelE, modelT *gp.Regressor
	err := parallel.Run(
		func() error {
			m, err := gp.FitHyper(xs, es, hyper)
			if err != nil {
				return fmt.Errorf("mobo: fit energy surrogate: %w", err)
			}
			modelE = m
			return nil
		},
		func() error {
			m, err := gp.FitHyper(xs, ts, hyperT)
			if err != nil {
				return fmt.Errorf("mobo: fit latency surrogate: %w", err)
			}
			modelT = m
			return nil
		},
	)
	if err != nil {
		return err
	}
	o.modelE, o.modelT = modelE, modelT
	o.cacheE, o.cacheT = nil, nil
	return nil
}

// predict returns the predictive distribution over the raw (non-log)
// objectives at x using the lognormal moments implied by the log-space GPs.
func predictRaw(modelE, modelT *gp.Regressor, x []float64) Gaussian2 {
	muE, sE := modelE.Predict(x)
	muT, sT := modelT.Predict(x)
	return lognormalMoments(muE, sE, muT, sT)
}

// lognormalMoments moment-matches the two log-space posteriors back to a
// Gaussian in raw space.
func lognormalMoments(muE, sE, muT, sT float64) Gaussian2 {
	mE := math.Exp(muE + sE*sE/2)
	vE := (math.Exp(sE*sE) - 1) * math.Exp(2*muE+sE*sE)
	mT := math.Exp(muT + sT*sT/2)
	vT := (math.Exp(sT*sT) - 1) * math.Exp(2*muT+sT*sT)
	return Gaussian2{MuX: mE, SigmaX: math.Sqrt(vE), MuY: mT, SigmaY: math.Sqrt(vT)}
}

// Suggestion is one candidate proposed by the optimizer.
type Suggestion struct {
	Index int       // index into the candidate set
	X     []float64 // normalized coordinates
	EHVI  float64   // acquisition value at selection time
}

// SuggestBatch proposes up to k unobserved candidates using sequential-greedy
// EHVI maximization with Kriging-believer fantasies: after each pick the
// surrogates are conditioned on the predicted mean at the picked point, so
// later picks spread out instead of clustering (§4.3, batch selection
// strategy). Fewer than k suggestions are returned when the unobserved pool
// or the acquisition signal is exhausted.
//
// The candidate scan fans out over the shared worker pool using the
// per-candidate cross-covariance caches (kernel work is done once per Fit,
// then extended by one kernel evaluation per fantasy), and the reduction is
// serial with an explicit lowest-index-wins rule on equal EHVI — parallel
// and serial scans return identical suggestions.
func (o *Optimizer) SuggestBatch(k int) ([]Suggestion, error) {
	if k <= 0 {
		return nil, nil
	}
	if len(o.obs) == 0 {
		return nil, ErrNoObservations
	}
	if o.modelE == nil || o.modelT == nil {
		if err := o.Fit(); err != nil {
			return nil, err
		}
	}
	defer o.sink.Span(obs.SpanEHVIScan)()
	ref, err := o.Reference()
	if err != nil {
		return nil, err
	}
	if o.cacheE == nil {
		o.cacheE = o.modelE.NewKStarCache(o.candidates)
	}
	if o.cacheT == nil {
		o.cacheT = o.modelT.NewKStarCache(o.candidates)
	}

	cacheE, cacheT := o.cacheE, o.cacheT
	front := o.Front()
	out := make([]Suggestion, 0, k)

	sc := getScanScratch(len(o.candidates))
	defer putScanScratch(sc)
	vals, gs, live := sc.vals, sc.gs, sc.live
	for i := range o.candidates {
		live[i] = !o.observed[i]
	}

	// Kriging-believer chains: the surrogate factors and the candidate
	// caches grow in place inside preallocated slabs — one slab copy up
	// front, zero copying per fantasy (k−1 fantasies per batch).
	fanE := o.modelE.NewFantasy(k - 1)
	defer fanE.Release()
	fanT := o.modelT.NewFantasy(k - 1)
	defer fanT.Release()
	chainE := cacheE.NewChain(k - 1)
	defer chainE.Release()
	chainT := cacheT.NewChain(k - 1)
	defer chainT.Release()
	cacheE, cacheT = chainE.Cur(), chainT.Cur()

	for pick := 0; pick < k; pick++ {
		// The strip decomposition depends only on the working front, which
		// is fixed for the duration of one pick: build it once and score
		// every candidate in O(n) instead of re-sorting per candidate.
		strips := NewEHVIStrips(front, ref)
		// Concurrent scan: every live candidate's posterior and EHVI land
		// in per-index slots; no cross-worker state. The optional float32
		// pre-screen narrows the exact float64 scoring to the top slice;
		// either way vals holds exact float64 scores for every candidate
		// that can win, so the serial reduction below is unaffected.
		if o.opts.Float32Prescreen {
			o.prescreenScan(sc, strips, cacheE, cacheT)
		} else {
			parallel.ForChunk(len(o.candidates), func(lo, hi int) {
				scanEHVI(strips, cacheE, cacheT, live, vals, gs, lo, hi)
			})
		}
		// Serial reduction, lowest candidate index wins on equal EHVI
		// (including the all-zero-EHVI regime near pool exhaustion).
		bestIdx, bestVal := -1, 0.0
		for i := range o.candidates {
			if !live[i] {
				continue
			}
			if bestIdx == -1 || vals[i] > bestVal {
				bestIdx, bestVal = i, vals[i]
			}
		}
		if bestIdx == -1 {
			break // pool exhausted
		}
		bestG := gs[bestIdx]
		out = append(out, Suggestion{Index: bestIdx, X: o.candidates[bestIdx], EHVI: bestVal})
		live[bestIdx] = false
		if pick == 0 {
			o.sink.SetGauge(obs.MetricAcqBest, bestVal)
		}

		if pick+1 == k {
			break
		}
		// Kriging believer: fantasize the predicted mean observation
		// and update both the surrogates and the working front. The
		// in-place rank-one Cholesky extension keeps batch selection
		// cheap, and the caches follow it with one kernel evaluation per
		// candidate.
		x := o.candidates[bestIdx]
		muE, _ := cacheE.Predict(bestIdx)
		muT, _ := cacheT.Predict(bestIdx)
		condE, err := fanE.Condition(x, muE)
		if err != nil {
			return nil, fmt.Errorf("mobo: believer conditioning: %w", err)
		}
		condT, err := fanT.Condition(x, muT)
		if err != nil {
			return nil, fmt.Errorf("mobo: believer conditioning: %w", err)
		}
		if cacheE, err = chainE.Extend(condE, x); err != nil {
			return nil, fmt.Errorf("mobo: believer cache extension: %w", err)
		}
		if cacheT, err = chainT.Extend(condT, x); err != nil {
			return nil, fmt.Errorf("mobo: believer cache extension: %w", err)
		}
		front = pareto.Front(append(front, pareto.Point{X: bestG.MuX, Y: bestG.MuY}))
	}
	return out, nil
}

// scanEHVI is the fused float64 candidate scan over [lo, hi): cached
// posterior dots, lognormal moment matching and the strip evaluation run
// back to back with no intermediate storage beyond the per-index result
// slots. Steady-state allocation-free (pinned by the allocation-regression
// suite); safe for concurrent use on disjoint ranges.
func scanEHVI(strips *EHVIStrips, cacheE, cacheT *gp.KStarCache, live []bool, vals []float64, gs []Gaussian2, lo, hi int) {
	for i := lo; i < hi; i++ {
		if !live[i] {
			continue
		}
		muE, sE := cacheE.Predict(i)
		muT, sT := cacheT.Predict(i)
		g := lognormalMoments(muE, sE, muT, sT)
		gs[i] = g
		vals[i] = strips.Value(g)
	}
}

// prescreenMin is the smallest float32 acquisition maximum the pre-screen
// trusts. Below it the batch is deep into acquisition exhaustion, where
// float32 resolution near zero could reorder candidates, so the scan falls
// back to exact float64 for every candidate — that regime is cheap anyway.
const prescreenMin = 1e-12

// prescreenScan is the float32-pre-screened candidate scan: a cheap
// approximate pass over all live candidates, then exact float64 re-scoring
// of the slice whose approximate score is within half of the approximate
// maximum. Candidates outside the slice get a sentinel below every exact
// score, so the caller's reduction sees exact values wherever the winner can
// be. See ehvi32.go for why the winner is always inside the slice.
func (o *Optimizer) prescreenScan(sc *scanScratch, strips *EHVIStrips, cacheE, cacheT *gp.KStarCache) {
	vals, gs, live, vals32 := sc.vals, sc.gs, sc.live, sc.vals32
	sc.s32.fill(strips)
	s32 := &sc.s32
	parallel.ForChunk(len(vals), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if !live[i] {
				continue
			}
			muE, sE := cacheE.Predict(i)
			muT, sT := cacheT.Predict(i)
			mx, sx, my, sy := lognormalMoments32(float32(muE), float32(sE), float32(muT), float32(sT))
			vals32[i] = s32.value(mx, sx, my, sy)
		}
	})
	best32 := float32(0)
	for i, v := range vals32 {
		if live[i] && v > best32 {
			best32 = v
		}
	}
	if best32 < prescreenMin {
		// Degenerate regime: approximate scores are all ~0, run exact.
		parallel.ForChunk(len(vals), func(lo, hi int) {
			scanEHVI(strips, cacheE, cacheT, live, vals, gs, lo, hi)
		})
		return
	}
	thresh := 0.5 * best32
	parallel.ForChunk(len(vals), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if !live[i] {
				continue
			}
			if vals32[i] < thresh {
				vals[i] = -1 // below every exact score; cannot win
				continue
			}
			muE, sE := cacheE.Predict(i)
			muT, sT := cacheT.Predict(i)
			g := lognormalMoments(muE, sE, muT, sT)
			gs[i] = g
			vals[i] = strips.Value(g)
		}
	})
}

// PosteriorAt exposes the raw-space predictive distribution at a candidate
// index, mainly for diagnostics and tests.
func (o *Optimizer) PosteriorAt(index int) (Gaussian2, error) {
	if index < 0 || index >= len(o.candidates) {
		return Gaussian2{}, fmt.Errorf("mobo: index %d out of range", index)
	}
	if o.modelE == nil || o.modelT == nil {
		if err := o.Fit(); err != nil {
			return Gaussian2{}, err
		}
	}
	return predictRaw(o.modelE, o.modelT, o.candidates[index]), nil
}
