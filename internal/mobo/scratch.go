package mobo

import "sync"

// scanScratch is the per-call arena for SuggestBatch's candidate scan: the
// per-candidate score/posterior/liveness slots plus the float32 pre-screen
// buffers. One arena serves a whole batch selection and returns to the pool
// afterwards, mirroring the codec's pooled wire buffers — in steady state a
// SuggestBatch call allocates no per-candidate storage at all.
type scanScratch struct {
	vals   []float64
	gs     []Gaussian2
	live   []bool
	vals32 []float32
	s32    ehviStrips32
}

var scanScratchPool sync.Pool

func getScanScratch(nc int) *scanScratch {
	sc, _ := scanScratchPool.Get().(*scanScratch)
	if sc == nil {
		sc = &scanScratch{}
	}
	if cap(sc.vals) < nc {
		sc.vals = make([]float64, nc)
		sc.gs = make([]Gaussian2, nc)
		sc.live = make([]bool, nc)
		sc.vals32 = make([]float32, nc)
	}
	sc.vals = sc.vals[:nc]
	sc.gs = sc.gs[:nc]
	sc.live = sc.live[:nc]
	sc.vals32 = sc.vals32[:nc]
	return sc
}

func putScanScratch(sc *scanScratch) {
	scanScratchPool.Put(sc)
}
