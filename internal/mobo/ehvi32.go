package mobo

import "math"

// Float32 fast path for the EHVI candidate pre-screen (Options.Float32Prescreen).
//
// The pre-screen scores every live candidate with float32 arithmetic and
// polynomial approximations of exp/erfc (each accurate to ~1e-7 relative,
// several times cheaper than the exact float64 library calls), keeps the
// slice of candidates whose approximate score is within a factor of two of
// the approximate maximum, and re-scores only that slice with the exact
// float64 path. Selection then runs on exact float64 values with the usual
// lowest-index-wins rule, so the picked candidates are bit-identical to a
// pure-float64 scan — the approximation only decides how much of the
// candidate set can be skipped, never which candidate wins. A factor-of-two
// margin is orders of magnitude wider than the approximation error, and the
// scan falls back to the full float64 path whenever the float32 maximum is
// too small to trust (≈ underflow regime, where acquisition is effectively
// exhausted). The determinism suite cross-checks prescreen and pure scans on
// the real workload.

const (
	invSqrt2f   float32 = 0.70710678118654752
	invSqrt2Pif float32 = 0.39894228040143268
)

// exp32 is a range-reduced polynomial e^x: x = k·ln2 + r with |r| ≤ ln2/2,
// e^x = 2^k · e^r, e^r by a degree-5 Taylor polynomial (absolute error
// ≲ 3e-6 over the reduced interval, relative error ~1e-7 after scaling).
func exp32(x float32) float32 {
	const (
		log2e float32 = 1.4426950408889634
		ln2hi float32 = 6.9314575195e-01
		ln2lo float32 = 1.4286067653e-06
	)
	if x > 88 {
		return float32(math.Inf(1))
	}
	if x < -87 {
		return 0
	}
	kf := x * log2e
	var k int32
	if kf >= 0 {
		k = int32(kf + 0.5)
	} else {
		k = int32(kf - 0.5)
	}
	fk := float32(k)
	r := (x - fk*ln2hi) - fk*ln2lo
	p := 1 + r*(1+r*(0.5+r*(1.0/6+r*(1.0/24+r*(1.0/120)))))
	return p * math.Float32frombits(uint32(127+k)<<23)
}

// erfc32 approximates the complementary error function with the
// Abramowitz–Stegun 7.1.26 rational polynomial (|ε| ≤ 1.5e-7 absolute).
func erfc32(z float32) float32 {
	neg := z < 0
	if neg {
		z = -z
	}
	t := 1 / (1 + 0.3275911*z)
	poly := t * (0.254829592 + t*(-0.284496736+t*(1.421413741+t*(-1.453152027+t*1.061405429))))
	e := poly * exp32(-z*z)
	if neg {
		return 2 - e
	}
	return e
}

// psi32 is psi (expected one-dimensional improvement below c) in float32.
func psi32(c, mu, sigma float32) float32 {
	if sigma <= 0 {
		if d := c - mu; d > 0 {
			return d
		}
		return 0
	}
	t := (c - mu) / sigma
	cdf := 0.5 * erfc32(-t*invSqrt2f)
	pdf := exp32(-0.5*t*t) * invSqrt2Pif
	return sigma * (t*cdf + pdf)
}

// lognormalMoments32 is lognormalMoments in float32.
func lognormalMoments32(muE, sE, muT, sT float32) (mx, sx, my, sy float32) {
	mx = exp32(muE + sE*sE/2)
	vx := (exp32(sE*sE) - 1) * exp32(2*muE+sE*sE)
	my = exp32(muT + sT*sT/2)
	vy := (exp32(sT*sT) - 1) * exp32(2*muT+sT*sT)
	return mx, float32(math.Sqrt(float64(vx))), my, float32(math.Sqrt(float64(vy)))
}

// ehviStrips32 is the float32 mirror of an EHVIStrips decomposition, laid
// out as flat bound arrays for the pre-screen's tight scan loop. The value
// buffers are owned by the caller's scratch arena and reused across picks.
type ehviStrips32 struct {
	empty      bool
	refX, refY float32
	b0         float32
	a, b, c    []float32
}

// fill mirrors s into the float32 decomposition, reusing the receiver's
// bound slices.
func (s32 *ehviStrips32) fill(s *EHVIStrips) {
	s32.empty = s.empty
	s32.refX, s32.refY = float32(s.ref.X), float32(s.ref.Y)
	s32.b0 = float32(s.b0)
	s32.a, s32.b, s32.c = s32.a[:0], s32.b[:0], s32.c[:0]
	for _, st := range s.strips {
		s32.a = append(s32.a, float32(st.a))
		s32.b = append(s32.b, float32(st.b))
		s32.c = append(s32.c, float32(st.c))
	}
}

// value is EHVIStrips.Value in float32, with the same boundary-sharing
// memoization.
func (s32 *ehviStrips32) value(muX, sgX, muY, sgY float32) float32 {
	if s32.empty {
		return psi32(s32.refX, muX, sgX) * psi32(s32.refY, muY, sgY)
	}
	prevB := s32.b0
	prevPsi1 := psi32(s32.b0, muX, sgX)
	total := prevPsi1 * psi32(s32.refY, muY, sgY)
	for i := range s32.a {
		pa := prevPsi1
		if s32.a[i] != prevB {
			pa = psi32(s32.a[i], muX, sgX)
		}
		pb := psi32(s32.b[i], muX, sgX)
		total += (pb - pa) * psi32(s32.c[i], muY, sgY)
		prevB, prevPsi1 = s32.b[i], pb
	}
	if total < 0 {
		total = 0
	}
	return total
}
