package mobo

import (
	"math"
	"math/rand"
	"testing"

	"bofl/internal/gp"
	"bofl/internal/pareto"
)

// scanFixture builds the state SuggestBatch hands to the fused scan: fitted
// energy/latency regressors over a candidate pool, their k* caches, a strip
// decomposition of the observed front, and the per-candidate result slots.
type scanFixture struct {
	strips         *EHVIStrips
	cacheE, cacheT *gp.KStarCache
	live           []bool
	vals           []float64
	gs             []Gaussian2
}

func newScanFixture(t testing.TB, nc int) *scanFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	candidates := make([][]float64, nc)
	for i := range candidates {
		candidates[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	const nobs = 12
	xs := make([][]float64, nobs)
	logE := make([]float64, nobs)
	logT := make([]float64, nobs)
	var front []pareto.Point
	for i := range xs {
		x := candidates[rng.Intn(nc)]
		xs[i] = x
		e := math.Exp(0.6*x[0] - 0.2*x[1])
		l := math.Exp(-0.4*x[0] + 0.7*x[2])
		logE[i] = math.Log(e)
		logT[i] = math.Log(l)
		front = append(front, pareto.Point{X: e, Y: l})
	}
	k1, err := gp.NewMatern52(1, []float64{0.4, 0.4, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := gp.NewMatern52(1, []float64{0.4, 0.4, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	rE, err := gp.Fit(k1, 0.05, xs, logE)
	if err != nil {
		t.Fatal(err)
	}
	rT, err := gp.Fit(k2, 0.05, xs, logT)
	if err != nil {
		t.Fatal(err)
	}
	ref := pareto.Point{X: 10, Y: 10}
	fr := pareto.Front(front)
	return &scanFixture{
		strips: NewEHVIStrips(fr, ref),
		cacheE: rE.NewKStarCache(candidates),
		cacheT: rT.NewKStarCache(candidates),
		live:   make([]bool, nc),
		vals:   make([]float64, nc),
		gs:     make([]Gaussian2, nc),
	}
}

// TestScanEHVIZeroAlloc pins the fused float64 candidate scan at zero
// steady-state allocations: cached posterior lookups, lognormal moment
// matching and the strip evaluation must run entirely in the caller's
// per-index slots.
func TestScanEHVIZeroAlloc(t *testing.T) {
	const nc = 128
	fx := newScanFixture(t, nc)
	for i := range fx.live {
		fx.live[i] = true
	}
	allocs := testing.AllocsPerRun(50, func() {
		scanEHVI(fx.strips, fx.cacheE, fx.cacheT, fx.live, fx.vals, fx.gs, 0, nc)
	})
	if allocs != 0 {
		t.Errorf("scanEHVI allocated %v times per run, want 0", allocs)
	}
	// The scan must have produced at least one finite, non-negative score.
	any := false
	for _, v := range fx.vals {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("invalid EHVI value %v", v)
		}
		if v > 0 {
			any = true
		}
	}
	if !any {
		t.Error("scan produced no positive EHVI — fixture degenerate")
	}
}

// TestStrips32FillAndValueZeroAlloc pins the float32 pre-screen kernel: both
// the strip conversion and the per-candidate evaluation are allocation-free
// once the scratch strips have warmed to the front size.
func TestStrips32FillAndValueZeroAlloc(t *testing.T) {
	fx := newScanFixture(t, 16)
	var s32 ehviStrips32
	s32.fill(fx.strips) // warm the append-reuse buffers
	allocs := testing.AllocsPerRun(50, func() {
		s32.fill(fx.strips)
		_ = s32.value(0.1, 0.4, 0.2, 0.3)
	})
	if allocs != 0 {
		t.Errorf("float32 pre-screen allocated %v times per run, want 0", allocs)
	}
}
