package mobo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bofl/internal/pareto"
)

func TestNormCDFKnownValues(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{10, 1},
		{-10, 0},
	}
	for _, tt := range tests {
		if got := normCDF(tt.in); math.Abs(got-tt.want) > 1e-6 {
			t.Errorf("normCDF(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestPsiDegenerate(t *testing.T) {
	// sigma = 0 → max(c-mu, 0).
	if got := psi(3, 1, 0); got != 2 {
		t.Errorf("psi(3,1,0) = %v, want 2", got)
	}
	if got := psi(1, 3, 0); got != 0 {
		t.Errorf("psi(1,3,0) = %v, want 0", got)
	}
}

func TestPsiIsExpectedShortfall(t *testing.T) {
	// psi(c; mu, sigma) = E[(c - Z)+] — verify by Monte Carlo.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		mu := rng.NormFloat64()
		sigma := 0.2 + rng.Float64()
		c := mu + (rng.Float64()*4 - 2)
		var sum float64
		const n = 400000
		for i := 0; i < n; i++ {
			z := mu + sigma*rng.NormFloat64()
			if z < c {
				sum += c - z
			}
		}
		mc := sum / n
		got := psi(c, mu, sigma)
		if math.Abs(got-mc) > 0.01 {
			t.Errorf("psi(%v,%v,%v) = %v, monte carlo %v", c, mu, sigma, got, mc)
		}
	}
}

func TestEHVIEmptyFront(t *testing.T) {
	// With no front, EHVI is E[(rX - Zx)+] * E[(rY - Zy)+].
	g := Gaussian2{MuX: 1, SigmaX: 0.5, MuY: 2, SigmaY: 0.25}
	ref := pareto.Point{X: 3, Y: 4}
	want := psi(3, 1, 0.5) * psi(4, 2, 0.25)
	if got := EHVI(g, nil, ref); math.Abs(got-want) > 1e-12 {
		t.Errorf("EHVI = %v, want %v", got, want)
	}
}

func TestEHVIDeterministicPoint(t *testing.T) {
	// With sigma → 0 the EHVI equals the deterministic HVI at the mean.
	front := []pareto.Point{{X: 1, Y: 3}, {X: 2, Y: 2}, {X: 3, Y: 1}}
	ref := pareto.Point{X: 4, Y: 4}
	cases := []pareto.Point{
		{X: 0.5, Y: 0.5}, // dominates everything in its corner
		{X: 2.5, Y: 2.5}, // dominated → zero
		{X: 1.5, Y: 2.5}, // partial improvement
		{X: 5, Y: 5},     // outside box → zero
	}
	for _, c := range cases {
		g := Gaussian2{MuX: c.X, SigmaX: 0, MuY: c.Y, SigmaY: 0}
		want := pareto.Improvement([]pareto.Point{c}, front, ref)
		got := EHVI(g, front, ref)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("EHVI at deterministic %v = %v, want HVI %v", c, got, want)
		}
	}
}

func TestEHVIMatchesQuadrature(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(6)
		front := make([]pareto.Point, n)
		for i := range front {
			front[i] = pareto.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}
		}
		ref := pareto.Point{X: 3 + rng.Float64()*2, Y: 3 + rng.Float64()*2}
		g := Gaussian2{
			MuX:    rng.Float64() * 4,
			SigmaX: 0.05 + rng.Float64(),
			MuY:    rng.Float64() * 4,
			SigmaY: 0.05 + rng.Float64(),
		}
		analytic := EHVI(g, front, ref)
		quad := EHVIQuadrature(g, front, ref)
		// The 16-point tensor quadrature is only ~5%-accurate because
		// the HVI integrand is piecewise linear with kinks; the analytic
		// form is the precise one (validated against Monte Carlo in
		// TestEHVIMonteCarloCrossCheck).
		tol := 5e-3 + 0.06*math.Abs(analytic)
		if math.Abs(analytic-quad) > tol {
			t.Errorf("trial %d: analytic %v vs quadrature %v (front=%v ref=%v g=%+v)",
				trial, analytic, quad, front, ref, g)
		}
	}
}

func TestEHVIMonteCarloCrossCheck(t *testing.T) {
	// Direct Monte Carlo over the predictive distribution.
	front := []pareto.Point{{X: 1, Y: 2}, {X: 2, Y: 1}}
	ref := pareto.Point{X: 3, Y: 3}
	g := Gaussian2{MuX: 1.2, SigmaX: 0.6, MuY: 1.2, SigmaY: 0.6}
	rng := rand.New(rand.NewSource(4))
	var sum float64
	const n = 300000
	for i := 0; i < n; i++ {
		z := pareto.Point{
			X: g.MuX + g.SigmaX*rng.NormFloat64(),
			Y: g.MuY + g.SigmaY*rng.NormFloat64(),
		}
		sum += pareto.Improvement([]pareto.Point{z}, front, ref)
	}
	mc := sum / n
	got := EHVI(g, front, ref)
	if math.Abs(got-mc) > 0.01 {
		t.Errorf("EHVI = %v, monte carlo %v", got, mc)
	}
}

func TestEHVINonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		front := make([]pareto.Point, rng.Intn(5))
		for i := range front {
			front[i] = pareto.Point{X: rng.Float64(), Y: rng.Float64()}
		}
		g := Gaussian2{
			MuX:    rng.Float64() * 2,
			SigmaX: rng.Float64(),
			MuY:    rng.Float64() * 2,
			SigmaY: rng.Float64(),
		}
		return EHVI(g, front, pareto.Point{X: 1, Y: 1}) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEHVIDominatedMeanStillPositiveWithUncertainty(t *testing.T) {
	// A candidate whose mean is dominated but with large uncertainty must
	// retain positive acquisition value — this is what makes BO explore.
	front := []pareto.Point{{X: 1, Y: 1}}
	ref := pareto.Point{X: 3, Y: 3}
	certain := EHVI(Gaussian2{MuX: 2, SigmaX: 0.001, MuY: 2, SigmaY: 0.001}, front, ref)
	uncertain := EHVI(Gaussian2{MuX: 2, SigmaX: 1, MuY: 2, SigmaY: 1}, front, ref)
	if certain > 1e-6 {
		t.Errorf("certain dominated point has EHVI %v, want ≈0", certain)
	}
	if uncertain < 1e-3 {
		t.Errorf("uncertain dominated point has EHVI %v, want clearly positive", uncertain)
	}
}

func TestHaltonPointRanges(t *testing.T) {
	for i := 0; i < 200; i++ {
		p, err := HaltonPoint(i, 3)
		if err != nil {
			t.Fatal(err)
		}
		for d, v := range p {
			if v <= 0 || v >= 1 {
				t.Fatalf("halton point %d dim %d = %v outside (0,1)", i, d, v)
			}
		}
	}
}

func TestHaltonPointErrors(t *testing.T) {
	if _, err := HaltonPoint(0, 0); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := HaltonPoint(0, 99); err == nil {
		t.Error("dim 99 accepted")
	}
	if _, err := HaltonPoint(-1, 2); err == nil {
		t.Error("negative index accepted")
	}
}

func TestHaltonUniformity(t *testing.T) {
	// Quasi-random points must cover all octants of the unit cube with
	// roughly equal counts.
	counts := make(map[int]int)
	const n = 800
	for i := 0; i < n; i++ {
		p, err := HaltonPoint(i, 3)
		if err != nil {
			t.Fatal(err)
		}
		key := 0
		for _, v := range p {
			key = key*2 + int(v*2)
		}
		counts[key]++
	}
	for oct := 0; oct < 8; oct++ {
		c := counts[oct]
		if c < n/8-25 || c > n/8+25 {
			t.Errorf("octant %d has %d points, want ≈%d", oct, c, n/8)
		}
	}
}

func TestHaltonIndicesDistinctAndInRange(t *testing.T) {
	dims := []int{25, 14, 6} // Jetson AGX DVFS grid
	idx, err := HaltonIndices(21, dims)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 21 {
		t.Fatalf("got %d indices, want 21", len(idx))
	}
	seen := make(map[int]bool)
	for _, i := range idx {
		if i < 0 || i >= 25*14*6 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
}

func TestHaltonIndicesClampsCount(t *testing.T) {
	idx, err := HaltonIndices(100, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 4 {
		t.Errorf("got %d indices from a 4-cell grid, want 4", len(idx))
	}
}

func TestHaltonIndicesValidation(t *testing.T) {
	if _, err := HaltonIndices(1, nil); err == nil {
		t.Error("empty dims accepted")
	}
	if _, err := HaltonIndices(1, []int{0}); err == nil {
		t.Error("zero dim accepted")
	}
}
