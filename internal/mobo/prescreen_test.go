package mobo

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestFloat32PrescreenMatchesFloat64 pins the pre-screen's soundness
// contract: with Float32Prescreen enabled, SuggestBatch must return exactly
// the suggestions of the pure-float64 scan — same indices, same coordinates,
// same float64 EHVI values, across many synthetic problems.
func TestFloat32PrescreenMatchesFloat64(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		const dim, nc = 3, 300
		candidates := make([][]float64, nc)
		for i := range candidates {
			c := make([]float64, dim)
			for d := range c {
				c[d] = rng.Float64()
			}
			candidates[i] = c
		}
		// Synthetic positive objectives with multiplicative structure, like
		// the energy/latency pair the optimizer models.
		objE := func(x []float64) float64 {
			return math.Exp(0.8*x[0] - 0.3*x[1] + 0.2*x[2]*x[2])
		}
		objT := func(x []float64) float64 {
			return math.Exp(-0.5*x[0] + 0.9*x[1] + 0.1*x[2])
		}

		run := func(prescreen bool) []Suggestion {
			opt, err := NewOptimizer(candidates, Options{
				Seed:             seed,
				Restarts:         2,
				Iters:            5,
				Float32Prescreen: prescreen,
			})
			if err != nil {
				t.Fatal(err)
			}
			obsRng := rand.New(rand.NewSource(2000 + seed))
			for i := 0; i < 14; i++ {
				idx := obsRng.Intn(nc)
				x := candidates[idx]
				if err := opt.Observe(Observation{
					Index:   idx,
					Energy:  objE(x) * (1 + 0.05*obsRng.NormFloat64()),
					Latency: objT(x) * (1 + 0.05*obsRng.NormFloat64()),
				}); err != nil {
					t.Fatal(err)
				}
			}
			sugg, err := opt.SuggestBatch(8)
			if err != nil {
				t.Fatal(err)
			}
			return sugg
		}

		exact := run(false)
		screened := run(true)
		if !reflect.DeepEqual(exact, screened) {
			t.Fatalf("seed %d: prescreen diverged from float64 scan:\nfloat64:  %+v\nprescreen: %+v", seed, exact, screened)
		}
		if len(exact) == 0 {
			t.Fatalf("seed %d: no suggestions produced", seed)
		}
	}
}
