package mobo

import (
	"testing"
)

// TestSuggestBatchTieBreakLowestIndex pins the tie-breaking contract: when
// several candidates share the maximal EHVI, the lowest candidate index wins.
// Identical candidate coordinates force exact ties — every unobserved
// candidate has the same posterior, so the scan must walk the pool in index
// order. This also covers the all-zero-EHVI regime near pool exhaustion,
// where the fantasized front drives the acquisition of the remaining
// duplicates to zero.
func TestSuggestBatchTieBreakLowestIndex(t *testing.T) {
	x := []float64{0.5, 0.5}
	cands := [][]float64{x, x, x, x, x, x}
	opt, err := NewOptimizer(cands, Options{Seed: 3, Restarts: 1, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Observe index 2, leaving {0, 1, 3, 4, 5} as exact ties.
	if err := opt.Observe(Observation{Index: 2, Energy: 1.0, Latency: 2.0}); err != nil {
		t.Fatal(err)
	}
	sugg, err := opt.SuggestBatch(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) != 4 {
		t.Fatalf("got %d suggestions, want 4", len(sugg))
	}
	want := []int{0, 1, 3, 4}
	for i, s := range sugg {
		if s.Index != want[i] {
			t.Errorf("pick %d = index %d, want %d (lowest index must win EHVI ties)", i, s.Index, want[i])
		}
	}
}

// TestSuggestBatchTieBreakMixedPool mixes one strictly better candidate with
// duplicate ties: the unique maximizer must come first, then the tied
// duplicates in index order.
func TestSuggestBatchTieBreakMixedPool(t *testing.T) {
	dup := []float64{0.8, 0.8}
	cands := [][]float64{dup, dup, {0.1, 0.1}, dup, {0.8, 0.8}}
	opt, err := NewOptimizer(cands, Options{Seed: 4, Restarts: 1, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Observations at the duplicate location and one distinct point give
	// the GP a gradient: the unobserved distinct candidate (index 2) gets
	// more acquisition value than the duplicates of an observed point.
	if err := opt.Observe(
		Observation{Index: 0, Energy: 2.0, Latency: 1.0},
		Observation{Index: 4, Energy: 2.1, Latency: 1.1},
	); err != nil {
		t.Fatal(err)
	}
	sugg, err := opt.SuggestBatch(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) == 0 {
		t.Fatal("no suggestions")
	}
	if sugg[0].Index != 2 {
		t.Fatalf("first pick = %d, want the unique unobserved location 2 (EHVI %v)", sugg[0].Index, sugg[0].EHVI)
	}
	// The remaining picks are exact ties between indices 1 and 3.
	want := []int{1, 3}
	for i, s := range sugg[1:] {
		if s.Index != want[i] {
			t.Errorf("pick %d = index %d, want %d", i+1, s.Index, want[i])
		}
	}
}
