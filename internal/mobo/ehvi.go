package mobo

import (
	"math"
	"sort"

	"bofl/internal/pareto"
)

// Gaussian2 is an independent bivariate Gaussian predictive distribution over
// the two objectives (as produced by two independent GP surrogates).
type Gaussian2 struct {
	MuX, SigmaX float64 // first objective (energy)
	MuY, SigmaY float64 // second objective (latency)
}

// normCDF is the standard normal cumulative distribution function.
func normCDF(t float64) float64 {
	return 0.5 * math.Erfc(-t/math.Sqrt2)
}

// normPDF is the standard normal density.
func normPDF(t float64) float64 {
	return math.Exp(-0.5*t*t) / math.Sqrt(2*math.Pi)
}

// psi computes E[(c − Z)⁺] for Z ~ N(mu, sigma²): the one-dimensional
// expected improvement below threshold c. For sigma = 0 it degenerates to
// max(c − mu, 0).
func psi(c, mu, sigma float64) float64 {
	if sigma <= 0 {
		return math.Max(c-mu, 0)
	}
	t := (c - mu) / sigma
	return sigma * (t*normCDF(t) + normPDF(t))
}

// EHVI computes the exact expected hypervolume improvement of sampling a new
// point with predictive distribution g, given the current Pareto front and
// reference point ref (both objectives minimized).
//
// Derivation: HVI(z) = ∫_B 1[z ⪯ u] du where B is the region inside the
// reference box not dominated by the front, so by Fubini
//
//	EHVI = ∫_B P(Z₁ ≤ u₁)·P(Z₂ ≤ u₂) du.
//
// B decomposes into vertical strips between consecutive front points; each
// strip contributes (ψ₁(b) − ψ₁(a)) · ψ₂(c) where ψ is the integral of the
// Gaussian CDF, a/b the strip's first-objective bounds and c its
// second-objective ceiling. This runs in O(n log n) for a front of size n.
func EHVI(g Gaussian2, front []pareto.Point, ref pareto.Point) float64 {
	return NewEHVIStrips(front, ref).Value(g)
}

// ehviStrip is one vertical slice of the non-dominated region: first-objective
// bounds [a, b) under second-objective ceiling c.
type ehviStrip struct {
	a, b, c float64
}

// EHVIStrips is the strip decomposition of the non-dominated region for a
// fixed Pareto front and reference point. The decomposition depends only on
// the front geometry, not on the candidate's predictive distribution, so a
// SuggestBatch candidate scan builds it once and evaluates every candidate in
// O(n) instead of re-sorting the front per candidate.
type EHVIStrips struct {
	strips []ehviStrip
	b0     float64 // upper bound of strip 0 (u₁ ∈ (−∞, b0), ceiling ref.Y)
	ref    pareto.Point
	empty  bool // no front points: the whole reference box improves
}

// NewEHVIStrips sorts and decomposes the front once. The strips replay the
// exact per-call arithmetic of the single-shot evaluation (same bounds, same
// empty-strip skipping), so Value is bitwise-identical to the historical
// inline EHVI loop.
func NewEHVIStrips(front []pareto.Point, ref pareto.Point) *EHVIStrips {
	f := pareto.Front(front)
	// Keep only points that restrict the region inside the box. Points at
	// or beyond the reference in X produce empty strips automatically;
	// points with Y ≥ ref.Y only matter through clipping below.
	sort.Slice(f, func(i, j int) bool { return f[i].X < f[j].X })

	s := &EHVIStrips{ref: ref}
	if len(f) == 0 {
		s.empty = true
		return s
	}
	// Strip 0: u₁ ∈ (−∞, x₁), ceiling ref.Y.
	s.b0 = math.Min(f[0].X, ref.X)
	s.strips = make([]ehviStrip, 0, len(f))
	for i := 0; i < len(f); i++ {
		a := math.Min(f[i].X, ref.X)
		b := ref.X
		if i+1 < len(f) {
			b = math.Min(f[i+1].X, ref.X)
		}
		if b <= a {
			continue
		}
		c := math.Min(f[i].Y, ref.Y)
		s.strips = append(s.strips, ehviStrip{a: a, b: b, c: c})
	}
	return s
}

// Value evaluates the expected hypervolume improvement of a candidate with
// predictive distribution g against the precomputed decomposition.
//
// Adjacent strips share a boundary whenever no empty strip was skipped
// between them, so ψ₁ at a strip's lower bound is usually ψ₁ at the previous
// strip's upper bound — ψ is a pure function, so reusing the memoized value
// on bound equality is bitwise-identical to recomputing it and removes about
// a third of the erfc/exp calls from the candidate scan's dominant term.
func (s *EHVIStrips) Value(g Gaussian2) float64 {
	if s.empty {
		return psi(s.ref.X, g.MuX, g.SigmaX) * psi(s.ref.Y, g.MuY, g.SigmaY)
	}
	prevB := s.b0
	prevPsi1 := psi(s.b0, g.MuX, g.SigmaX)
	total := prevPsi1 * psi(s.ref.Y, g.MuY, g.SigmaY)
	for _, st := range s.strips {
		pa := prevPsi1
		if st.a != prevB {
			pa = psi(st.a, g.MuX, g.SigmaX)
		}
		pb := psi(st.b, g.MuX, g.SigmaX)
		total += (pb - pa) * psi(st.c, g.MuY, g.SigmaY)
		prevB, prevPsi1 = st.b, pb
	}
	if total < 0 {
		// Guard against tiny negative values from floating cancellation.
		total = 0
	}
	return total
}

// gauss-Hermite nodes and weights (16-point), for ∫ f(t)·e^(−t²) dt.
var (
	ghNodes = []float64{
		-4.688738939305818, -3.869447904860123, -3.176999161979956,
		-2.546202157847481, -1.951787990916254, -1.380258539198881,
		-0.8229514491446559, -0.2734810461381524, 0.2734810461381524,
		0.8229514491446559, 1.380258539198881, 1.951787990916254,
		2.546202157847481, 3.176999161979956, 3.869447904860123,
		4.688738939305818,
	}
	ghWeights = []float64{
		2.654807474011182e-10, 2.320980844865211e-07, 2.711860092537881e-05,
		9.322840086241805e-04, 1.288031153550997e-02, 8.381004139898583e-02,
		2.806474585285337e-01, 5.079294790166137e-01, 5.079294790166137e-01,
		2.806474585285337e-01, 8.381004139898583e-02, 1.288031153550997e-02,
		9.322840086241805e-04, 2.711860092537881e-05, 2.320980844865211e-07,
		2.654807474011182e-10,
	}
)

// EHVIQuadrature estimates the expected hypervolume improvement by 16×16
// Gauss–Hermite quadrature over the bivariate predictive distribution. It is
// slower than the analytic EHVI and used to cross-validate it in tests and
// ablation benchmarks.
func EHVIQuadrature(g Gaussian2, front []pareto.Point, ref pareto.Point) float64 {
	f := pareto.Front(front)
	total := 0.0
	s2 := math.Sqrt2
	for i, ti := range ghNodes {
		zx := g.MuX + s2*g.SigmaX*ti
		for j, tj := range ghNodes {
			zy := g.MuY + s2*g.SigmaY*tj
			hvi := pareto.Improvement([]pareto.Point{{X: zx, Y: zy}}, f, ref)
			total += ghWeights[i] * ghWeights[j] * hvi
		}
	}
	return total / math.Pi
}
