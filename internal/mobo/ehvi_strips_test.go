package mobo

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"bofl/internal/pareto"
)

// legacyEHVI is a verbatim copy of the pre-decomposition single-shot EHVI
// (sort + strip loop per call). The strips refactor must be bitwise-identical
// to it for every (front, ref, g).
func legacyEHVI(g Gaussian2, front []pareto.Point, ref pareto.Point) float64 {
	f := pareto.Front(front)
	sort.Slice(f, func(i, j int) bool { return f[i].X < f[j].X })

	total := 0.0
	psi1 := func(c float64) float64 { return psi(c, g.MuX, g.SigmaX) }
	psi2 := func(c float64) float64 { return psi(c, g.MuY, g.SigmaY) }

	if len(f) == 0 {
		return psi1(ref.X) * psi2(ref.Y)
	}
	b0 := math.Min(f[0].X, ref.X)
	total += psi1(b0) * psi2(ref.Y)
	for i := 0; i < len(f); i++ {
		a := math.Min(f[i].X, ref.X)
		b := ref.X
		if i+1 < len(f) {
			b = math.Min(f[i+1].X, ref.X)
		}
		if b <= a {
			continue
		}
		c := math.Min(f[i].Y, ref.Y)
		total += (psi1(b) - psi1(a)) * psi2(c)
	}
	if total < 0 {
		total = 0
	}
	return total
}

// TestEHVIStripsMatchesLegacy drives the precomputed decomposition against
// the historical inline implementation over randomized fronts, references and
// predictive distributions, requiring bit-for-bit equality.
func TestEHVIStripsMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(8) // includes empty fronts
		front := make([]pareto.Point, n)
		for i := range front {
			front[i] = pareto.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}
		}
		ref := pareto.Point{X: 1 + rng.Float64()*3, Y: 1 + rng.Float64()*3}
		strips := NewEHVIStrips(front, ref)
		for probe := 0; probe < 20; probe++ {
			g := Gaussian2{
				MuX: rng.Float64() * 5, SigmaX: rng.Float64() * 2,
				MuY: rng.Float64() * 5, SigmaY: rng.Float64() * 2,
			}
			if probe%5 == 0 {
				g.SigmaX, g.SigmaY = 0, 0 // degenerate (deterministic) posterior
			}
			want := legacyEHVI(g, front, ref)
			if got := strips.Value(g); got != want {
				t.Fatalf("trial %d probe %d: strips.Value=%v legacy=%v (diff %g)",
					trial, probe, got, want, got-want)
			}
			if got := EHVI(g, front, ref); got != want {
				t.Fatalf("trial %d probe %d: EHVI wrapper=%v legacy=%v", trial, probe, got, want)
			}
		}
	}
}

// TestEHVIStripsRefBeyondFront covers fronts entirely at or past the
// reference in X, where every strip collapses and only strip 0 contributes.
func TestEHVIStripsRefBeyondFront(t *testing.T) {
	front := []pareto.Point{{X: 5, Y: 0.1}, {X: 6, Y: 0.05}}
	ref := pareto.Point{X: 2, Y: 2}
	g := Gaussian2{MuX: 1, SigmaX: 0.5, MuY: 1, SigmaY: 0.5}
	want := legacyEHVI(g, front, ref)
	if got := NewEHVIStrips(front, ref).Value(g); got != want {
		t.Fatalf("collapsed strips: got %v want %v", got, want)
	}
}
