package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1003} {
		counts := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForChunkCoversRangeDisjointly(t *testing.T) {
	const n = 500
	counts := make([]int32, n)
	ForChunk(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d, %d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&counts[i], 1)
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	SetWorkers(0)
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d with unset width, want GOMAXPROCS %d", got, want)
	}
}

func TestForSerialWidthRunsInline(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	// With width 1 everything runs on the calling goroutine, so unguarded
	// writes are safe — this is what the determinism suite's serial arm uses.
	sum := 0
	For(100, func(i int) { sum += i })
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	err := ForErr(100, func(i int) error {
		switch i {
		case 97:
			return errHigh
		case 13:
			return errLow
		}
		return nil
	})
	if err != errLow {
		t.Fatalf("ForErr returned %v, want the lowest-index error %v", err, errLow)
	}
	if err := ForErr(50, func(int) error { return nil }); err != nil {
		t.Fatalf("ForErr = %v on success", err)
	}
}

func TestRun(t *testing.T) {
	var a, b int
	err := Run(
		func() error { a = 1; return nil },
		func() error { b = 2; return nil },
	)
	if err != nil || a != 1 || b != 2 {
		t.Fatalf("Run: err=%v a=%d b=%d", err, a, b)
	}
	want := errors.New("first")
	err = Run(
		func() error { return want },
		func() error { return errors.New("second") },
	)
	if err != want {
		t.Fatalf("Run returned %v, want %v", err, want)
	}
}

func TestNestedFanOutDoesNotDeadlock(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	// Outer fan-out saturating the pool, each task fanning out again:
	// inner calls must degrade to inline execution instead of blocking on
	// helper tokens held by their ancestors.
	var total atomic.Int64
	For(16, func(int) {
		For(16, func(int) {
			total.Add(1)
		})
	})
	if total.Load() != 256 {
		t.Fatalf("nested total = %d, want 256", total.Load())
	}
}

func TestForChunkMaxBoundsWidth(t *testing.T) {
	prev := SetWorkers(8)
	defer SetWorkers(prev)

	// max=1 must run entirely on the caller: no concurrency, strict order.
	var order []int
	ForChunkMax(100, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			order = append(order, i)
		}
	})
	if len(order) != 100 {
		t.Fatalf("visited %d indices, want 100", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("max=1 ran out of order at %d: got %d", i, v)
		}
	}

	// max=3 must never have more than 3 workers in flight.
	var inFlight, peak atomic.Int64
	ForChunkMax(1000, 3, func(lo, hi int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("ForChunkMax(max=3) had %d workers in flight", p)
	}

	// Coverage: every index exactly once at any cap.
	seen := make([]atomic.Int32, 500)
	ForChunkMax(500, 2, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i].Add(1)
		}
	})
	for i := range seen {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}
