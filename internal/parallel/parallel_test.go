package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1003} {
		counts := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForChunkCoversRangeDisjointly(t *testing.T) {
	const n = 500
	counts := make([]int32, n)
	ForChunk(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d, %d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&counts[i], 1)
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	SetWorkers(0)
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d with unset width, want GOMAXPROCS %d", got, want)
	}
}

func TestForSerialWidthRunsInline(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	// With width 1 everything runs on the calling goroutine, so unguarded
	// writes are safe — this is what the determinism suite's serial arm uses.
	sum := 0
	For(100, func(i int) { sum += i })
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	err := ForErr(100, func(i int) error {
		switch i {
		case 97:
			return errHigh
		case 13:
			return errLow
		}
		return nil
	})
	if err != errLow {
		t.Fatalf("ForErr returned %v, want the lowest-index error %v", err, errLow)
	}
	if err := ForErr(50, func(int) error { return nil }); err != nil {
		t.Fatalf("ForErr = %v on success", err)
	}
}

func TestRun(t *testing.T) {
	var a, b int
	err := Run(
		func() error { a = 1; return nil },
		func() error { b = 2; return nil },
	)
	if err != nil || a != 1 || b != 2 {
		t.Fatalf("Run: err=%v a=%d b=%d", err, a, b)
	}
	want := errors.New("first")
	err = Run(
		func() error { return want },
		func() error { return errors.New("second") },
	)
	if err != want {
		t.Fatalf("Run returned %v, want %v", err, want)
	}
}

func TestNestedFanOutDoesNotDeadlock(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	// Outer fan-out saturating the pool, each task fanning out again:
	// inner calls must degrade to inline execution instead of blocking on
	// helper tokens held by their ancestors.
	var total atomic.Int64
	For(16, func(int) {
		For(16, func(int) {
			total.Add(1)
		})
	})
	if total.Load() != 256 {
		t.Fatalf("nested total = %d, want 256", total.Load())
	}
}
