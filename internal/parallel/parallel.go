// Package parallel provides the shared bounded worker pool behind BoFL's
// acquisition hot path and experiment harness. It exposes deterministic
// fan-out primitives: work is always indexed, results land in caller-owned
// per-index slots, and reductions happen serially in the caller, so the
// output of a parallel run is byte-identical to the serial one regardless of
// scheduling (DESIGN.md, "Performance architecture").
//
// Boundedness is global: a process-wide token pool caps the number of helper
// goroutines across all concurrent For/Run calls. The calling goroutine
// always participates in the work and helpers are acquired without blocking,
// so nested fan-out (e.g. Optimizer.Fit fitting two surrogates that each
// fan out hyperparameter restarts) degrades to inline execution instead of
// deadlocking.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers holds the configured width; 0 means "use runtime.GOMAXPROCS(0)".
var workers atomic.Int64

// Pool instrumentation: cheap atomics bumped once per fan-out (never per
// index), snapshotted by Stats for the obs layer's /metrics gauges.
var (
	statFanouts        atomic.Uint64 // ForChunk calls that used helpers
	statInline         atomic.Uint64 // ForChunk calls that ran on the caller only
	statHelperAcquires atomic.Uint64 // helper tokens handed out across all fan-outs
)

// PoolStats is a point-in-time snapshot of the worker pool.
type PoolStats struct {
	// Workers is the configured pool width (callers + helpers).
	Workers int
	// HelperCapacity is the number of helper tokens (Workers − 1).
	HelperCapacity int
	// HelpersBusy is how many helper tokens are currently checked out.
	HelpersBusy int
	// Fanouts counts ForChunk calls that acquired at least one helper.
	Fanouts uint64
	// InlineRuns counts ForChunk calls that ran serially (n ≤ 1 worker or
	// no helper available).
	InlineRuns uint64
	// HelperAcquires counts helper tokens handed out over the process
	// lifetime; HelperAcquires/Fanouts is the mean fan-out width.
	HelperAcquires uint64
}

// Utilization is the busy fraction of the helper pool in [0, 1]; 0 when the
// pool has no helpers.
func (s PoolStats) Utilization() float64 {
	if s.HelperCapacity <= 0 {
		return 0
	}
	return float64(s.HelpersBusy) / float64(s.HelperCapacity)
}

// Stats snapshots the pool counters. The gauge fields are instantaneous and
// may be stale by the time the caller reads them; the counters are exact.
func Stats() PoolStats {
	c := *tokens.Load()
	return PoolStats{
		Workers:        Workers(),
		HelperCapacity: cap(c),
		HelpersBusy:    cap(c) - len(c),
		Fanouts:        statFanouts.Load(),
		InlineRuns:     statInline.Load(),
		HelperAcquires: statHelperAcquires.Load(),
	}
}

// tokens is the global helper-goroutine pool. Its capacity tracks
// Workers()−1 (the caller is the remaining worker). Rebuilt by SetWorkers.
var tokens atomic.Pointer[chan struct{}]

func init() {
	resizePool(0)
}

func resizePool(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	c := make(chan struct{}, n-1)
	for i := 0; i < n-1; i++ {
		c <- struct{}{}
	}
	tokens.Store(&c)
}

// Workers returns the configured pool width: the value set by SetWorkers, or
// runtime.GOMAXPROCS(0) when unset.
func Workers() int {
	if w := workers.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the pool width and returns the previous setting (0 if it
// was tracking GOMAXPROCS). n ≤ 0 reverts to tracking GOMAXPROCS. It is
// intended for process startup (CLI flags) and tests; concurrent calls with
// in-flight For/Run are safe but the new width only applies to subsequent
// calls.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	prev := workers.Swap(int64(n))
	resizePool(n)
	return int(prev)
}

// acquireHelpers grabs up to max helper tokens without blocking and returns
// the tokens' source channel plus the number acquired.
func acquireHelpers(max int) (chan struct{}, int) {
	c := *tokens.Load()
	got := 0
	for got < max {
		select {
		case <-c:
			got++
		default:
			return c, got
		}
	}
	return c, got
}

// ForChunk processes the index range [0, n) with fn invoked on disjoint
// sub-ranges [lo, hi). Workers pull chunks from a shared counter, so fn must
// be safe to call concurrently; chunk boundaries are scheduling-dependent but
// every index is visited exactly once. fn should write results into
// per-index slots of a caller-owned slice to stay deterministic.
func ForChunk(n int, fn func(lo, hi int)) {
	ForChunkMax(n, 0, fn)
}

// ForChunkMax is ForChunk with a per-call width cap: at most max workers
// (caller + helpers) process the range, regardless of the pool width. max ≤ 0
// means no extra cap. Callers with their own concurrency budget — e.g. the
// fleet engine's -workers flag — bound one fan-out without resizing the
// global pool.
func ForChunkMax(n, max int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if max > 0 && w > max {
		w = max
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		statInline.Add(1)
		fn(0, n)
		return
	}
	// Chunks small enough to balance load, large enough to amortize the
	// counter; 4 chunks per worker is the usual compromise.
	chunk := n / (w * 4)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	work := func() {
		for {
			lo := int(next.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	c, helpers := acquireHelpers(w - 1)
	if helpers > 0 {
		statFanouts.Add(1)
		statHelperAcquires.Add(uint64(helpers))
	} else {
		statInline.Add(1)
	}
	var wg sync.WaitGroup
	wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		go func() {
			defer wg.Done()
			defer func() { c <- struct{}{} }()
			work()
		}()
	}
	work() // the caller is always a worker
	wg.Wait()
}

// For invokes fn(i) for every i in [0, n) across the worker pool.
func For(n int, fn func(i int)) {
	ForChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForErr invokes fn(i) for every i in [0, n) across the worker pool and
// returns the error of the lowest failing index (deterministic regardless of
// scheduling), or nil. All indices are attempted even after a failure; the
// per-task cost in BoFL's harness is large enough that wasted work after an
// error is irrelevant next to deterministic behavior.
func ForErr(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	For(n, func(i int) {
		errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run executes the given functions concurrently on the pool and returns the
// error of the lowest failing index. Used for small static fan-out, e.g.
// fitting the energy and latency surrogates side by side.
func Run(fns ...func() error) error {
	return ForErr(len(fns), func(i int) error { return fns[i]() })
}
