package bofl_test

import (
	"testing"

	"bofl"
)

// Exercise the public constructors end to end: a miniature federation with
// every model type and both data partitioners, on a custom device with a
// thermal wrapper and a simulated DVFS backend.
func TestPublicFederationWithEveryModelKind(t *testing.T) {
	models := []struct {
		name  string
		build func() (bofl.MLModel, []bofl.MLExample, error)
	}{
		{"linear", func() (bofl.MLModel, []bofl.MLExample, error) {
			m, err := bofl.NewLinearModel(6, 3, 1)
			if err != nil {
				return nil, nil, err
			}
			d, err := bofl.Blobs(60, 6, 3, 0.5, 1)
			return m, d, err
		}},
		{"mlp", func() (bofl.MLModel, []bofl.MLExample, error) {
			m, err := bofl.NewMLP(6, 8, 3, 1)
			if err != nil {
				return nil, nil, err
			}
			d, err := bofl.Blobs(60, 6, 3, 0.5, 2)
			return m, d, err
		}},
		{"cnn", func() (bofl.MLModel, []bofl.MLExample, error) {
			m, err := bofl.NewCNNModel(8, 4, 2, 1)
			if err != nil {
				return nil, nil, err
			}
			d, err := bofl.ImagePatterns(60, 8, 2, 0.3, 3)
			return m, d, err
		}},
		{"lstm", func() (bofl.MLModel, []bofl.MLExample, error) {
			m, err := bofl.NewLSTMModel(16, 4, 6, 2, 1)
			if err != nil {
				return nil, nil, err
			}
			d, err := bofl.Sentiment(60, 16, 6, 0.2, 4)
			return m, d, err
		}},
	}
	dev := bofl.JetsonAGX()
	for _, mk := range models {
		model, data, err := mk.build()
		if err != nil {
			t.Fatalf("%s: %v", mk.name, err)
		}
		ctrl, err := bofl.NewPerformant(dev.Space())
		if err != nil {
			t.Fatal(err)
		}
		client, err := bofl.NewFLClient(bofl.FLClientConfig{
			ID:         mk.name,
			Device:     dev,
			Workload:   bofl.ViT,
			Model:      model,
			Data:       data,
			BatchSize:  8,
			LearnRate:  0.1,
			Controller: ctrl,
			Seed:       1,
		})
		if err != nil {
			t.Fatalf("%s: %v", mk.name, err)
		}
		srv, err := bofl.NewFLServer(bofl.FLServerConfig{
			InitialParams: client.Params(),
			Jobs:          10,
			DeadlineRatio: 2,
			Selector:      bofl.NewEnergyAwareSelector(1, 0.25),
			Seed:          2,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Register(&bofl.LocalParticipant{Client: client})
		res, err := srv.RunRound()
		if err != nil {
			t.Fatalf("%s: %v", mk.name, err)
		}
		if len(res.Responses) != 1 || !res.Reports[0].DeadlineMet {
			t.Errorf("%s: bad round %+v", mk.name, res.Reports)
		}
	}
}

func TestPublicPartitioners(t *testing.T) {
	data, err := bofl.Blobs(100, 4, 4, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	iid, err := bofl.PartitionExamples(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	nonIID, err := bofl.PartitionNonIID(data, 4, 4, 0.3, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range [][][]bofl.MLExample{iid, nonIID} {
		total := 0
		for _, s := range shards {
			total += len(s)
		}
		if total != 100 {
			t.Errorf("partition lost examples: %d", total)
		}
	}
}

func TestPublicCustomDeviceWithThermalWrapper(t *testing.T) {
	dev, err := bofl.NewCustomDevice(bofl.DeviceSpec{
		Name:        "test-soc",
		StaticWatts: 1,
		CPU:         bofl.UnitSpec{Freqs: []bofl.Freq{0.5, 1.0, 2.0}, VMin: 0.6, VMax: 1.0, DynCoeff: 2, IdleFrac: 0.3},
		GPU:         bofl.UnitSpec{Freqs: []bofl.Freq{0.2, 0.6, 1.0}, VMin: 0.6, VMax: 1.0, DynCoeff: 4, IdleFrac: 0.3},
		Mem:         bofl.UnitSpec{Freqs: []bofl.Freq{0.8, 1.6}, VMin: 0.6, VMax: 0.9, DynCoeff: 1, IdleFrac: 0.4},
		Workloads: map[bofl.Workload]bofl.WorkloadSpec{
			"w": {CPUShare: 0.5, GPUShare: 1, MemShare: 0.2, SerialFrac: 0.3, LatencyAtMax: 0.1, EnergyAtMax: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	board, err := bofl.NewThermalDevice(dev, bofl.DefaultThermal())
	if err != nil {
		t.Fatal(err)
	}
	lat, energy, err := board.RunJob("w", dev.Space().Max())
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 || energy <= 0 {
		t.Errorf("job cost (%v, %v)", lat, energy)
	}

	backend, err := bofl.NewSimDVFSBackend(dev.Space())
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.Apply(dev.Space().Min()); err != nil {
		t.Fatal(err)
	}
	cur, err := backend.Current()
	if err != nil {
		t.Fatal(err)
	}
	if cur != dev.Space().Min() {
		t.Errorf("backend current = %+v", cur)
	}
}
